//! The campaign worker: pull job batches over TCP, run them on the local
//! work-stealing executor, stream store-format results back.
//!
//! The worker is domain-agnostic like the runner: the caller supplies the
//! closure that turns one [`JobSpec`] into one JSON result (the CLI and the
//! figure binaries pass `surepath_core::run_job`). Panics inside the
//! closure are caught by the executor and delivered as `failed` records —
//! exactly the semantics of a local campaign — so one crashing simulation
//! costs one grid cell, not a worker.
//!
//! The worker also survives the *coordinator* failing: any transport error
//! mid-campaign (EOF, reset, broken pipe) sends it into a reconnect loop
//! driven by [`ReconnectPolicy`] — capped exponential backoff with
//! deterministic jitter — where it re-dials, re-Hellos with its stable
//! `worker_id`, and resumes. The campaign fingerprint in `Welcome` gates
//! resumption: a restarted coordinator serving the *same* grid is resumed
//! silently, while a different campaign on the same address aborts loudly
//! instead of folding foreign results. Batches interrupted mid-delivery are
//! re-offered by the coordinator (re-Hello reclaims the dead connection's
//! leases), and duplicate deliveries fold idempotently, so the finished
//! store stays byte-identical to a local run across any kill/restart
//! sequence.

use crate::protocol::{read_message, write_message, Reply, Request};
use crate::session::{is_transient, ReconnectPolicy};
use serde::Value;
use std::io::BufReader;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use surepath_runner::{
    job_fingerprint, log_debug, log_info, log_warn, run_work_stealing, JobOutcome, JobSpec,
    StoreRecord,
};

/// Tuning knobs of [`run_worker`].
#[derive(Clone, Debug)]
pub struct WorkerOptions {
    /// Executor threads on this worker (`None` = all cores).
    pub threads: Option<usize>,
    /// Jobs requested per `Fetch` (`None` = 2x the thread count, so the
    /// executor always has a next job while results stream out).
    pub chunk: Option<usize>,
    /// How long to keep retrying the initial connection (the coordinator
    /// may still be binding, or a `--spawn-local` parent may win the race).
    pub connect_retry: Duration,
    /// The re-dial plan after a transport failure mid-campaign.
    pub reconnect: ReconnectPolicy,
    /// Suppress per-batch progress output.
    pub quiet: bool,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            threads: None,
            chunk: None,
            connect_retry: Duration::from_secs(10),
            reconnect: ReconnectPolicy::default(),
            quiet: true,
        }
    }
}

/// What a worker did before the coordinator drained it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Jobs executed on this worker (re-runs after a reconnect count again:
    /// this measures work done here, not distinct grid cells).
    pub executed: usize,
    /// Of those, how many failed (error or panic).
    pub failed: usize,
    /// Successful reconnects after a transport failure mid-campaign.
    pub reconnects: usize,
}

/// Connects to `addr`, retrying **transient** failures (refused, reset,
/// unreachable, timed out — see [`is_transient`]) until `retry_for`
/// elapses; anything else fails fast, because retrying cannot cure a bad
/// address or a permission error. The deadline is exact: the last attempt
/// fires at or before it, never after (the pre-attempt sleep is clamped to
/// the time remaining).
fn connect_with_retry(addr: &str, retry_for: Duration) -> std::io::Result<TcpStream> {
    let deadline = Instant::now() + retry_for;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) if !is_transient(e.kind()) => {
                return Err(std::io::Error::new(
                    e.kind(),
                    format!("cannot reach coordinator at {addr}: {e}"),
                ))
            }
            Err(e) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!("cannot reach coordinator at {addr}: {e}"),
                    ));
                }
                std::thread::sleep((deadline - now).min(Duration::from_millis(50)));
            }
        }
    }
}

/// Builds the store-format record for one executed job — the same record a
/// local campaign would append, so the coordinator's store stays
/// byte-identical to a local run's.
fn record_for(job: &JobSpec, outcome: JobOutcome<Result<Value, String>>) -> StoreRecord {
    let fp = job_fingerprint(job);
    match outcome {
        JobOutcome::Completed(Ok(result)) => StoreRecord {
            fp,
            status: "ok".to_string(),
            job: job.clone(),
            result: Some(result),
            error: None,
        },
        JobOutcome::Completed(Err(error)) => StoreRecord {
            fp,
            status: "failed".to_string(),
            job: job.clone(),
            result: None,
            error: Some(error),
        },
        JobOutcome::Panicked(message) => StoreRecord {
            fp,
            status: "failed".to_string(),
            job: job.clone(),
            result: None,
            error: Some(format!("panic: {message}")),
        },
    }
}

/// Per-campaign state that survives reconnects.
struct Session {
    executed: usize,
    failed: usize,
    reconnects: usize,
    /// The session nonce from the last `Welcome` (sent back in the next
    /// `Hello` so both sides can log resume-vs-restart).
    nonce: Option<String>,
    /// The campaign fingerprint from the first `Welcome`. Every later
    /// `Welcome` must match — a mismatch means the address now serves a
    /// different campaign and the worker must abort, not resume.
    fingerprint: Option<String>,
}

/// Runs a worker against the coordinator at `addr` until the campaign is
/// drained. `worker_id` names this worker in leases, manifests and timing
/// records — it must be unique among concurrent workers (host + pid is the
/// CLI's choice). Each fetched batch runs on the runner's work-stealing
/// executor with `opts.threads` workers; results stream back one by one as
/// they finish. Transport failures trigger the reconnect loop described in
/// the module docs; only a non-transient error, a campaign-fingerprint
/// mismatch, or an exhausted [`ReconnectPolicy`] make the worker give up.
pub fn run_worker<F>(
    addr: &str,
    worker_id: &str,
    opts: &WorkerOptions,
    job_fn: F,
) -> std::io::Result<WorkerOutcome>
where
    F: Fn(&JobSpec) -> Result<Value, String> + Sync,
{
    let threads = opts
        .threads
        .unwrap_or_else(surepath_runner::default_threads);
    let chunk = opts.chunk.unwrap_or(threads.saturating_mul(2).max(1));
    let mut session = Session {
        executed: 0,
        failed: 0,
        reconnects: 0,
        nonce: None,
        fingerprint: None,
    };
    let mut attempt = 0usize;

    loop {
        let welcomed_before = session.nonce.is_some();
        let reconnects_before = session.reconnects;
        match run_session(addr, worker_id, opts, &job_fn, threads, chunk, &mut session) {
            Ok(()) => {
                if !opts.quiet {
                    log_info!(
                        &format!("worker {worker_id}"),
                        "drained: {} executed, {} failed",
                        session.executed,
                        session.failed
                    );
                }
                return Ok(WorkerOutcome {
                    executed: session.executed,
                    failed: session.failed,
                    reconnects: session.reconnects,
                });
            }
            Err(e) if is_transient(e.kind()) => {
                // A session that got as far as a Welcome proves the link
                // works: reset the counter so only *consecutive* failed
                // attempts count against the retry budget.
                let welcomed = session.reconnects > reconnects_before
                    || (!welcomed_before && session.nonce.is_some());
                if welcomed {
                    attempt = 0;
                }
                attempt += 1;
                if attempt > opts.reconnect.retries {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!(
                            "giving up after {} reconnect attempt(s): {e}",
                            opts.reconnect.retries
                        ),
                    ));
                }
                let delay = opts.reconnect.delay(attempt, worker_id);
                if !opts.quiet {
                    log_warn!(
                        &format!("worker {worker_id}"),
                        "connection lost ({e}); reconnect attempt {attempt}/{} in {delay:?}",
                        opts.reconnect.retries
                    );
                }
                std::thread::sleep(delay);
            }
            Err(e) => return Err(e),
        }
    }
}

/// One connection's worth of campaign work: dial, handshake, then fetch /
/// execute / deliver until `Drained`. `Ok(())` means the campaign drained;
/// any transport error bubbles up for [`run_worker`]'s reconnect loop.
#[allow(clippy::too_many_arguments)]
fn run_session<F>(
    addr: &str,
    worker_id: &str,
    opts: &WorkerOptions,
    job_fn: &F,
    threads: usize,
    chunk: usize,
    session: &mut Session,
) -> std::io::Result<()>
where
    F: Fn(&JobSpec) -> Result<Value, String> + Sync,
{
    let reconnecting = session.nonce.is_some();
    let retry_for = if reconnecting {
        Duration::ZERO
    } else {
        opts.connect_retry
    };
    let stream = connect_with_retry(addr, retry_for)?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    write_message(
        &mut writer,
        &Request::Hello {
            worker: worker_id.to_string(),
            session: session.nonce.clone(),
        },
    )?;
    let welcome: Reply = read_message(&mut reader)?.ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "coordinator hung up during handshake",
        )
    })?;
    let campaign = match welcome {
        Reply::Welcome {
            campaign,
            session: nonce,
            fingerprint,
            ..
        } => {
            // The fingerprint is the resume gate: same grid resumes, a
            // different grid on the same address is a fatal mix-up.
            if let Some(expected) = &session.fingerprint {
                if expected != &fingerprint {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "coordinator at {addr} now serves a different campaign \
                             (fingerprint {fingerprint}, expected {expected}); aborting"
                        ),
                    ));
                }
            }
            session.fingerprint = Some(fingerprint);
            if reconnecting {
                session.reconnects += 1;
                if !opts.quiet {
                    log_info!(
                        &format!("worker {worker_id}"),
                        "reconnected, resuming `{campaign}`"
                    );
                }
            }
            session.nonce = Some(nonce);
            campaign
        }
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected Welcome, got {other:?}"),
            ))
        }
    };

    let mut drained = false;
    while !drained {
        write_message(&mut writer, &Request::Fetch { max: chunk })?;
        let reply: Reply = match read_message(&mut reader)? {
            Some(reply) => reply,
            // The coordinator hung up without Drained: it (or the network)
            // died. Surface as a transport error — the reconnect loop will
            // re-dial; a half-finished campaign must never look drained.
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "coordinator hung up before draining the campaign",
                ))
            }
        };
        match reply {
            Reply::Assign { jobs } => {
                if !opts.quiet {
                    log_debug!(
                        &format!("worker {worker_id}"),
                        "{} job(s) of campaign `{campaign}`",
                        jobs.len()
                    );
                }
                // Results stream back from the executor's consumer callback
                // as they finish; a delivery failure stops the pool (the
                // batch's leases are reclaimed when this worker re-Hellos).
                let mut io_error: Option<std::io::Error> = None;
                let executed = &mut session.executed;
                let failed = &mut session.failed;
                run_work_stealing(
                    &jobs,
                    threads,
                    |_, job| {
                        let started = Instant::now();
                        let result = job_fn(job);
                        (result, started.elapsed().as_millis() as u64)
                    },
                    |idx, outcome| {
                        let (outcome, millis) = match outcome {
                            JobOutcome::Completed((result, millis)) => {
                                (JobOutcome::Completed(result), millis)
                            }
                            JobOutcome::Panicked(message) => (JobOutcome::Panicked(message), 0),
                        };
                        let record = record_for(&jobs[idx], outcome);
                        *executed += 1;
                        if record.status != "ok" {
                            *failed += 1;
                        }
                        let sent = write_message(&mut writer, &Request::Deliver { record, millis });
                        match sent.and_then(|()| read_message::<Reply>(&mut reader)) {
                            Ok(Some(Reply::Drained)) => {
                                drained = true;
                                false
                            }
                            Ok(Some(Reply::ProtocolError { message })) => {
                                io_error = Some(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    message,
                                ));
                                false
                            }
                            Ok(Some(_)) => true,
                            Ok(None) => {
                                // EOF instead of a delivery ack: the
                                // coordinator is gone mid-batch.
                                io_error = Some(std::io::Error::new(
                                    std::io::ErrorKind::UnexpectedEof,
                                    "coordinator hung up mid-delivery",
                                ));
                                false
                            }
                            Err(e) => {
                                io_error = Some(e);
                                false
                            }
                        }
                    },
                );
                if let Some(e) = io_error {
                    return Err(e);
                }
            }
            Reply::Wait { millis } => {
                std::thread::sleep(Duration::from_millis(millis.min(1_000)));
            }
            Reply::Drained => drained = true,
            Reply::ProtocolError { message } => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    message,
                ))
            }
            Reply::Welcome { .. } => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "unexpected second Welcome",
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_with_retry_respects_the_deadline_exactly() {
        // Port 1 on loopback refuses immediately (transient), so the retry
        // loop spins until the deadline — which it must not overshoot by
        // more than one 50ms sleep plus scheduling noise.
        let started = Instant::now();
        let err = connect_with_retry("127.0.0.1:1", Duration::from_millis(200)).unwrap_err();
        let elapsed = started.elapsed();
        assert!(is_transient(err.kind()), "{err}");
        assert!(elapsed >= Duration::from_millis(200), "{elapsed:?}");
        assert!(elapsed < Duration::from_secs(2), "{elapsed:?}");
    }

    #[test]
    fn connect_with_retry_with_zero_window_tries_exactly_once() {
        let started = Instant::now();
        let err = connect_with_retry("127.0.0.1:1", Duration::ZERO).unwrap_err();
        assert!(is_transient(err.kind()), "{err}");
        assert!(started.elapsed() < Duration::from_millis(500));
    }
}
