//! Seeded socket fault injection for distributed-campaign tests.
//!
//! Reproducing network failure by hand — pulling cables, killing processes
//! at the right instant — makes for tests that flake or prove nothing. This
//! module makes failure *schedulable*: [`FaultyStream`] wraps any
//! `Read + Write` transport and perturbs it according to a ChaCha8-seeded
//! [`FaultPlan`] — injected delays, partial writes, mid-frame truncations,
//! connection drops — so a test names a seed and gets the exact same
//! ordeal every run.
//!
//! [`FaultyProxy`] puts that to work against real sockets: it listens on a
//! loopback port, forwards every accepted connection to an upstream
//! address through a `FaultyStream`, and severs *both* sides whenever the
//! plan injects a drop. Pointing a worker at the proxy instead of the
//! coordinator exercises the whole fault path end to end — the worker sees
//! resets and reconnects through its backoff schedule, the coordinator
//! sees EOFs and reclaims leases — while the store must still come out
//! byte-identical to a fault-free run.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What faults to inject and how often. Rates are per-mille (0–1000) per
/// I/O operation, evaluated in the order drop → truncate → partial →
/// delay, so the sum must stay ≤ 1000 for the tail to mean "no fault".
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed of the fault schedule. Same seed, same config, same sequence
    /// of operations → the exact same faults.
    pub seed: u64,
    /// Chance an operation drops the connection outright (subsequent
    /// operations fail with `ConnectionReset`).
    pub drop_per_mille: u32,
    /// Chance a write delivers only half its buffer *and then* drops — a
    /// mid-frame truncation, the nastiest failure a line protocol faces.
    /// On reads this acts like a drop (a reader cannot truncate the peer).
    pub truncate_per_mille: u32,
    /// Chance a write delivers only part of its buffer (benign: the caller
    /// must handle short writes, the peer must reassemble split frames).
    pub partial_per_mille: u32,
    /// Chance an operation stalls for a seeded delay first.
    pub delay_per_mille: u32,
    /// Upper bound on an injected delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Operations to pass through untouched before faults may start —
    /// lets a handshake complete so tests target the steady state.
    pub grace_ops: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_per_mille: 5,
            truncate_per_mille: 5,
            partial_per_mille: 50,
            delay_per_mille: 50,
            max_delay_ms: 20,
            grace_ops: 8,
        }
    }
}

impl FaultConfig {
    /// A config that injects nothing — a passthrough control.
    pub fn none(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_per_mille: 0,
            truncate_per_mille: 0,
            partial_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
            grace_ops: 0,
        }
    }
}

/// One fault decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Pass the operation through untouched.
    None,
    /// Stall for the given duration first, then pass through.
    Delay(Duration),
    /// Deliver only part of the buffer (short read/write).
    Partial,
    /// Deliver half the buffer, then drop the connection.
    Truncate,
    /// Drop the connection before the operation.
    Drop,
}

/// The seeded schedule: a stream of [`Fault`] decisions, one per I/O
/// operation. Deterministic given `(config, seed)`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: ChaCha8Rng,
    ops: u64,
}

impl FaultPlan {
    pub fn new(config: FaultConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        FaultPlan {
            config,
            rng,
            ops: 0,
        }
    }

    /// The next decision in the schedule. Draws exactly one value per call
    /// (plus one for a delay's duration), so schedules depend only on call
    /// order, never on buffer contents or sizes.
    pub fn next_fault(&mut self) -> Fault {
        self.ops += 1;
        // The draw happens even inside the grace window so the post-grace
        // schedule does not depend on how long the handshake was.
        let roll = self.rng.next_u32() % 1000;
        let delay_roll = self.rng.next_u64();
        if self.ops <= self.config.grace_ops {
            return Fault::None;
        }
        let c = &self.config;
        let mut bound = c.drop_per_mille;
        if roll < bound {
            return Fault::Drop;
        }
        bound += c.truncate_per_mille;
        if roll < bound {
            return Fault::Truncate;
        }
        bound += c.partial_per_mille;
        if roll < bound {
            return Fault::Partial;
        }
        bound += c.delay_per_mille;
        if roll < bound && c.max_delay_ms > 0 {
            return Fault::Delay(Duration::from_millis(delay_roll % (c.max_delay_ms + 1)));
        }
        Fault::None
    }
}

fn dropped_error() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::ConnectionReset,
        "connection dropped by fault injection",
    )
}

/// A `Read + Write` transport perturbed by a [`FaultPlan`]. Once the plan
/// drops the connection every further operation fails with
/// `ConnectionReset`, like a real severed socket.
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    dropped: bool,
}

impl<S> FaultyStream<S> {
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStream {
            inner,
            plan,
            dropped: false,
        }
    }

    /// Whether the plan has severed this stream.
    pub fn is_dropped(&self) -> bool {
        self.dropped
    }

    /// The wrapped transport (for shutdown after a drop).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dropped {
            return Err(dropped_error());
        }
        match self.plan.next_fault() {
            Fault::Drop | Fault::Truncate => {
                // A reader cannot truncate what the peer sent; both mean
                // "the connection died under us".
                self.dropped = true;
                Err(dropped_error())
            }
            Fault::Delay(d) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Fault::Partial => {
                let cap = (buf.len() / 7).max(1).min(buf.len());
                self.inner.read(&mut buf[..cap])
            }
            Fault::None => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dropped {
            return Err(dropped_error());
        }
        match self.plan.next_fault() {
            Fault::Drop => {
                self.dropped = true;
                Err(dropped_error())
            }
            Fault::Truncate => {
                // Half the frame goes out, then the line dies: the peer
                // holds a prefix with no newline and must treat it as a
                // dead connection, never as a message.
                let half = (buf.len() / 2).max(1).min(buf.len());
                let sent = self.inner.write(&buf[..half]);
                let _ = self.inner.flush();
                self.dropped = true;
                match sent {
                    Ok(_) => Err(dropped_error()),
                    Err(e) => Err(e),
                }
            }
            Fault::Delay(d) => {
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            Fault::Partial => {
                let part = (buf.len() / 2).max(1).min(buf.len());
                self.inner.write(&buf[..part])
            }
            Fault::None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dropped {
            return Err(dropped_error());
        }
        self.inner.flush()
    }
}

/// A loopback TCP proxy that forwards to `upstream` through fault-injected
/// streams. Every accepted connection gets its own schedule (the config
/// seed XOR a connection counter), and an injected drop severs both sides
/// so worker and coordinator each observe the failure.
pub struct FaultyProxy {
    /// The address workers should dial instead of the coordinator.
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    drops: Arc<AtomicUsize>,
    connections: Arc<AtomicUsize>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FaultyProxy {
    /// Binds a fresh loopback port and starts proxying to `upstream`.
    pub fn start(upstream: &str, config: FaultConfig) -> std::io::Result<FaultyProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let drops = Arc::new(AtomicUsize::new(0));
        let connections = Arc::new(AtomicUsize::new(0));
        let upstream = upstream.to_string();
        let accept_stop = Arc::clone(&stop);
        let accept_drops = Arc::clone(&drops);
        let accept_conns = Arc::clone(&connections);
        let handle = std::thread::spawn(move || {
            let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !accept_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let conn = accept_conns.fetch_add(1, Ordering::SeqCst) as u64;
                        let mut cfg = config.clone();
                        cfg.seed ^= conn.rotate_left(17).wrapping_mul(0x9e3779b97f4a7c15);
                        match TcpStream::connect(&upstream) {
                            Ok(server) => {
                                let drops = Arc::clone(&accept_drops);
                                pumps.push(std::thread::spawn(move || {
                                    pump_connection(client, server, cfg, &drops);
                                }));
                            }
                            Err(_) => {
                                // Upstream is down (coordinator restarting):
                                // refuse by closing; the worker's backoff
                                // loop handles it.
                                let _ = client.shutdown(Shutdown::Both);
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            for p in pumps {
                let _ = p.join();
            }
        });
        Ok(FaultyProxy {
            addr,
            stop,
            drops,
            connections,
            handle: Some(handle),
        })
    }

    /// Connection drops injected so far (across all connections).
    pub fn drops(&self) -> usize {
        self.drops.load(Ordering::SeqCst)
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> usize {
        self.connections.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the proxy thread. Existing pumps wind
    /// down as their connections close.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultyProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Pumps bytes both ways between `client` and `server`, the client side
/// wrapped in fault injection. The first injected drop (or a real error /
/// EOF on either side) shuts both sockets down.
fn pump_connection(client: TcpStream, server: TcpStream, config: FaultConfig, drops: &AtomicUsize) {
    let c2s_plan = FaultPlan::new(config.clone());
    let mut s2c_cfg = config;
    s2c_cfg.seed = s2c_cfg.seed.rotate_left(32) ^ 0x5bd1_e995;
    let s2c_plan = FaultPlan::new(s2c_cfg);

    let client_read = match client.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let server_read = match server.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // Each pump thread gets its own clones of both sockets so it can sever
    // the whole connection (TcpStream clones share the one OS socket).
    let (sever_client_a, sever_server_a, sever_client_b, sever_server_b) = match (
        client.try_clone(),
        server.try_clone(),
        client.try_clone(),
        server.try_clone(),
    ) {
        (Ok(a), Ok(b), Ok(c), Ok(d)) => (a, b, c, d),
        _ => return,
    };
    let sever_c2s = move || {
        let _ = sever_client_a.shutdown(Shutdown::Both);
        let _ = sever_server_a.shutdown(Shutdown::Both);
    };
    let sever_s2c = move || {
        let _ = sever_client_b.shutdown(Shutdown::Both);
        let _ = sever_server_b.shutdown(Shutdown::Both);
    };

    let conn_drops = Arc::new(AtomicUsize::new(0));
    let drops_c2s = Arc::clone(&conn_drops);
    let drops_s2c = Arc::clone(&conn_drops);
    let c2s = std::thread::spawn(move || {
        let mut faulty = FaultyStream::new(client_read, c2s_plan);
        let mut out = server;
        let _ = pump(&mut faulty, &mut out);
        if faulty.is_dropped() {
            drops_c2s.fetch_add(1, Ordering::SeqCst);
        }
        sever_c2s();
    });
    let s2c = std::thread::spawn(move || {
        let mut input = server_read;
        let mut faulty = FaultyStream::new(client, s2c_plan);
        let _ = pump(&mut input, &mut faulty);
        if faulty.is_dropped() {
            drops_s2c.fetch_add(1, Ordering::SeqCst);
        }
        sever_s2c();
    });
    let _ = c2s.join();
    let _ = s2c.join();
    // One severed connection counts once, however many pumps noticed.
    drops.fetch_add(conn_drops.load(Ordering::SeqCst).min(1), Ordering::SeqCst);
}

/// Copies bytes from `src` to `dst` until EOF or error, honouring short
/// writes (fault-injected partials included).
fn pump(src: &mut impl Read, dst: &mut impl Write) -> std::io::Result<()> {
    let mut buf = [0u8; 4096];
    loop {
        let n = src.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        let mut written = 0;
        while written < n {
            let w = dst.write(&buf[written..n])?;
            if w == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "proxy wrote zero bytes",
                ));
            }
            written += w;
        }
        dst.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// An in-memory transport: writes append, reads drain.
    #[derive(Default)]
    struct Loopback {
        buf: VecDeque<u8>,
    }

    impl Read for Loopback {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.buf.len());
            for slot in buf.iter_mut().take(n) {
                *slot = self.buf.pop_front().unwrap();
            }
            Ok(n)
        }
    }

    impl Write for Loopback {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.buf.extend(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn schedule(config: FaultConfig, ops: usize) -> Vec<Fault> {
        let mut plan = FaultPlan::new(config);
        (0..ops).map(|_| plan.next_fault()).collect()
    }

    #[test]
    fn schedules_are_seed_deterministic_and_seed_sensitive() {
        let config = FaultConfig {
            seed: 42,
            ..FaultConfig::default()
        };
        assert_eq!(schedule(config.clone(), 200), schedule(config.clone(), 200));
        let other = FaultConfig {
            seed: 43,
            ..config.clone()
        };
        assert_ne!(schedule(config, 200), schedule(other, 200));
    }

    #[test]
    fn grace_window_passes_operations_through_untouched() {
        let config = FaultConfig {
            seed: 7,
            drop_per_mille: 1000,
            grace_ops: 5,
            ..FaultConfig::default()
        };
        let faults = schedule(config, 7);
        assert!(faults[..5].iter().all(|f| *f == Fault::None), "{faults:?}");
        assert_eq!(faults[5], Fault::Drop);
        assert_eq!(faults[6], Fault::Drop);
    }

    #[test]
    fn zero_rates_never_perturb_the_stream() {
        let mut s = FaultyStream::new(Loopback::default(), FaultPlan::new(FaultConfig::none(1)));
        s.write_all(b"hello faultnet\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello faultnet\n");
        assert!(!s.is_dropped());
    }

    #[test]
    fn a_drop_is_sticky_like_a_severed_socket() {
        let config = FaultConfig {
            seed: 3,
            drop_per_mille: 1000,
            grace_ops: 0,
            ..FaultConfig::default()
        };
        let mut s = FaultyStream::new(Loopback::default(), FaultPlan::new(config));
        let err = s.write(b"doomed").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert!(s.is_dropped());
        let err = s.read(&mut [0u8; 8]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn truncation_delivers_a_prefix_then_severs() {
        let config = FaultConfig {
            seed: 9,
            truncate_per_mille: 1000,
            drop_per_mille: 0,
            grace_ops: 0,
            ..FaultConfig::default()
        };
        let mut s = FaultyStream::new(Loopback::default(), FaultPlan::new(config));
        let err = s.write(b"{\"Fetch\":{\"max\":8}}\n").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        // Half the frame made it out — a mid-frame cut, no newline.
        assert_eq!(s.get_ref().buf.len(), 10);
        assert!(!s.get_ref().buf.contains(&b'\n'));
    }

    #[test]
    fn partial_writes_deliver_short_counts_not_errors() {
        let config = FaultConfig {
            seed: 11,
            partial_per_mille: 1000,
            drop_per_mille: 0,
            truncate_per_mille: 0,
            grace_ops: 0,
            ..FaultConfig::default()
        };
        let mut s = FaultyStream::new(Loopback::default(), FaultPlan::new(config));
        let n = s.write(b"0123456789").unwrap();
        assert_eq!(n, 5, "half the buffer");
        assert!(!s.is_dropped());
        // write_all completes by looping over short writes.
        let mut s = FaultyStream::new(
            Loopback::default(),
            FaultPlan::new(FaultConfig {
                seed: 11,
                partial_per_mille: 1000,
                drop_per_mille: 0,
                truncate_per_mille: 0,
                grace_ops: 0,
                ..FaultConfig::default()
            }),
        );
        s.write_all(b"0123456789").unwrap();
        assert_eq!(s.get_ref().buf.len(), 10);
    }

    #[test]
    fn proxy_passes_bytes_through_with_a_fault_free_plan() {
        // A trivial upstream echo server: read a line, write it back.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            if let Ok((mut stream, _)) = upstream.accept() {
                let mut buf = [0u8; 64];
                if let Ok(n) = stream.read(&mut buf) {
                    let _ = stream.write_all(&buf[..n]);
                }
            }
        });
        let proxy = FaultyProxy::start(&upstream_addr.to_string(), FaultConfig::none(1)).unwrap();
        let mut client = TcpStream::connect(proxy.addr).unwrap();
        client.write_all(b"ping\n").unwrap();
        let mut reply = [0u8; 5];
        client.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"ping\n");
        assert_eq!(proxy.connections(), 1);
        assert_eq!(proxy.drops(), 0);
        drop(client);
        echo.join().unwrap();
        proxy.stop();
    }
}
