//! The campaign coordinator: expand once, serve shard queues over TCP,
//! fold streamed results into one byte-deterministic store.
//!
//! The coordinator owns the three artefacts of a distributed run:
//!
//! * the **result store** (`ResultStore`) — records append in arrival order
//!   while workers stream, then `finalize(&jobs)` rewrites the canonical
//!   grid order, exactly like a local `run_campaign`. Same records, same
//!   finalize: the finished store is **byte-identical to a local run**,
//!   whatever the worker count, join order, or mid-run losses were;
//! * the **shard manifest** (`<store>.manifest.jsonl`) — every lease and
//!   every delivery is journalled, so `--report` can tell "missing" from
//!   "assigned elsewhere / in-flight" and a coordinator restarted after a
//!   crash re-offers only unfinished fingerprints;
//! * the **timings sidecar** (`<store>.timings.jsonl`) — workers report
//!   per-job wall-clock with each delivery; it never touches the store.
//!
//! Scheduling is [`ShardQueues`]: jobs partition statically by fingerprint
//! prefix, workers drain their home shard first and steal from the most
//! loaded sibling's tail. A worker that disconnects (or sits on a lease past
//! its deadline) has its jobs re-offered; duplicate deliveries — a slow
//! worker finishing after its lease was re-offered and re-run — are folded
//! idempotently (results are deterministic functions of the job, so both
//! copies carry the same bytes; `ok` is never downgraded).

use crate::protocol::{write_message, Reply, Request};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use surepath_runner::{
    job_fingerprint, manifest_path, queue::shard_of_fingerprint, timings_path, JobSpec,
    ResultStore, ShardManifest, ShardQueues, StoreRecord, TimingRecord, TimingsLog,
};

/// Tuning knobs of [`serve`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Static shard count (fingerprint-prefix partitions). More shards than
    /// workers is fine — extra shards are drained by stealing; workers past
    /// the shard count share home shards round-robin.
    pub shards: usize,
    /// Lease duration: a job not delivered within this window is re-offered.
    pub lease: Duration,
    /// Max jobs handed out per `Fetch`.
    pub chunk: usize,
    /// Suppress progress output on stderr.
    pub quiet: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: 8,
            lease: Duration::from_secs(60),
            chunk: 8,
            quiet: false,
        }
    }
}

/// What a finished distributed campaign looked like (the coordinator's
/// analogue of `CampaignOutcome`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Total jobs in the expanded grid.
    pub total: usize,
    /// Jobs skipped because the store already had them.
    pub skipped: usize,
    /// Jobs executed by workers this run.
    pub executed: usize,
    /// Of the executed jobs, how many failed (error or panic on the worker).
    pub failed: usize,
    /// Distinct workers that introduced themselves.
    pub workers: usize,
    /// Jobs that were re-offered after a lost worker or an expired lease.
    pub reoffered: usize,
}

impl ServeOutcome {
    /// Whether every grid cell now has a successful result.
    pub fn is_complete(&self) -> bool {
        self.skipped + self.executed - self.failed == self.total
    }
}

/// Everything the per-connection handler threads share.
struct Shared {
    /// The pending jobs (not complete in the store at serve start).
    pending: Vec<JobSpec>,
    /// Fingerprint → index into `pending`.
    by_fp: HashMap<String, usize>,
    /// Shard queues + leases over `pending` indices.
    queues: ShardQueues,
    store: ResultStore,
    manifest: ShardManifest,
    timings: TimingsLog,
    /// Indices of `pending` jobs whose result has been folded in.
    delivered: Vec<bool>,
    delivered_count: usize,
    failed: usize,
    workers: usize,
    reoffered: usize,
    quiet: bool,
}

impl Shared {
    fn is_done(&self) -> bool {
        self.delivered_count == self.pending.len()
    }
}

/// Reads one request off a connection whose socket has a short read
/// timeout, treating each timeout as a poll tick rather than a failure:
/// partially received lines accumulate across ticks (so a message split
/// across TCP segments can never desync the stream), and `keep_waiting`
/// decides whether to go on waiting — the handler passes "campaign not
/// done yet". Returns `None` when the connection is gone (EOF, transport
/// error, garbage) or `keep_waiting` says stop.
fn read_request_polling(
    reader: &mut BufReader<TcpStream>,
    mut keep_waiting: impl FnMut() -> bool,
) -> Option<Request> {
    use std::io::BufRead as _;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return None, // clean EOF
            // `read_line` returns only at the delimiter or EOF; a line
            // without its newline is a connection that died mid-message.
            Ok(_) if !line.ends_with('\n') => return None,
            Ok(_) => return serde_json::from_str(line.trim_end()).ok(),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Poll tick; any bytes already read stay in `line`.
                if !keep_waiting() {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

/// One worker connection, served to completion on its own thread.
///
/// Reads poll with a short timeout, but a timeout is **not** a verdict on
/// the worker: a worker crunching a long job is legitimately silent for the
/// whole job duration, so the handler just keeps waiting (the job's *lease*
/// is what re-offers the work if the worker really is hung). The poll
/// exists so the handler can notice campaign completion and exit instead of
/// blocking the coordinator's shutdown on a worker that will never speak
/// again. Only EOF / a transport error means the worker is gone — its
/// leases re-offer immediately.
fn handle_connection(stream: TcpStream, campaign: &str, shared: &Mutex<Shared>, chunk: usize) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;

    // Campaign completion does not end the conversation instantly: a worker
    // sleeping through a Wait backoff still deserves its final `Drained`
    // instead of a closed socket, so the handler lingers for a grace period
    // after it first observes completion (workers back off 100ms; 1s is
    // plenty) and only then stops waiting for silent peers.
    let mut done_at: Option<Instant> = None;
    let mut keep_waiting = move |shared: &Mutex<Shared>| -> bool {
        if !shared.lock().expect("coordinator state").is_done() {
            return true;
        }
        done_at.get_or_insert_with(Instant::now).elapsed() < Duration::from_secs(1)
    };

    // First message must be Hello; it names the worker for leases/manifest.
    let worker = match read_request_polling(&mut reader, || keep_waiting(shared)) {
        Some(Request::Hello { worker }) => worker,
        Some(_) => {
            let _ = write_message(
                &mut writer,
                &Reply::ProtocolError {
                    message: "first message must be Hello".into(),
                },
            );
            return;
        }
        None => return,
    };
    let shard = {
        let mut shared = shared.lock().expect("coordinator state");
        let shard = shared.workers % shared.queues.shards();
        shared.workers += 1;
        if !shared.quiet {
            eprintln!("[dist] worker `{worker}` joined (home shard {shard})");
        }
        shard
    };
    if write_message(
        &mut writer,
        &Reply::Welcome {
            campaign: campaign.to_string(),
            shard,
        },
    )
    .is_err()
    {
        return;
    }

    loop {
        let request = match read_request_polling(&mut reader, || keep_waiting(shared)) {
            Some(request) => request,
            // EOF, a broken pipe, or campaign completion while the worker
            // was silent. If the worker is really gone its leases re-offer
            // immediately instead of waiting for the deadline; on
            // completion there are no leases left to release.
            None => {
                let mut shared = shared.lock().expect("coordinator state");
                let released = shared.queues.release_worker(&worker);
                shared.reoffered += released;
                if released > 0 && !shared.quiet {
                    eprintln!("[dist] worker `{worker}` lost; re-offering {released} job(s)");
                }
                return;
            }
        };
        let reply = match request {
            Request::Hello { .. } => Reply::ProtocolError {
                message: "duplicate Hello".into(),
            },
            Request::Fetch { max } => {
                let mut shared = shared.lock().expect("coordinator state");
                let now = Instant::now();
                let reaped = shared.queues.reap_expired(now);
                shared.reoffered += reaped;
                if reaped > 0 && !shared.quiet {
                    eprintln!("[dist] {reaped} lease(s) expired; re-offering");
                }
                // Both sides bound the batch: the worker's appetite and the
                // coordinator's `--chunk` cap (small chunks keep expensive
                // tails spread across workers).
                let taken = shared
                    .queues
                    .pop_for(&worker, shard, max.clamp(1, chunk), now);
                // A re-queued copy of a job that was meanwhile delivered by
                // its original (slow) worker must not run again: release the
                // fresh lease and drop it here.
                let mut fresh = Vec::with_capacity(taken.len());
                for idx in taken {
                    if shared.delivered[idx] {
                        shared.queues.complete(idx);
                    } else {
                        fresh.push(idx);
                    }
                }
                if fresh.is_empty() {
                    if shared.is_done() {
                        Reply::Drained
                    } else {
                        // Everything is leased out elsewhere (or the dropped
                        // duplicates emptied the batch): back off briefly.
                        Reply::Wait { millis: 100 }
                    }
                } else {
                    let mut jobs = Vec::with_capacity(fresh.len());
                    for idx in &fresh {
                        let job = shared.pending[*idx].clone();
                        let fp = job_fingerprint(&job);
                        let job_shard = shard_of_fingerprint(&fp, shared.queues.shards());
                        let _ = shared.manifest.record_assigned(&fp, job_shard, &worker);
                        jobs.push(job);
                    }
                    Reply::Assign { jobs }
                }
            }
            Request::Deliver { record, millis } => {
                let mut shared = shared.lock().expect("coordinator state");
                match fold_delivery(&mut shared, &worker, record, millis) {
                    Ok(()) => {
                        if shared.is_done() {
                            Reply::Drained
                        } else {
                            // No reply needed per delivery; but the protocol
                            // is strict request/reply, so acknowledge with
                            // the next state: more work or wait.
                            Reply::Wait { millis: 0 }
                        }
                    }
                    Err(message) => Reply::ProtocolError { message },
                }
            }
        };
        let done = matches!(reply, Reply::Drained);
        if write_message(&mut writer, &reply).is_err() {
            let mut shared = shared.lock().expect("coordinator state");
            let released = shared.queues.release_worker(&worker);
            shared.reoffered += released;
            return;
        }
        if done {
            return;
        }
    }
}

/// Folds one delivered record into store + manifest + timings. Duplicate
/// and stale deliveries (lease expired, job re-offered and already
/// delivered by someone else) are dropped idempotently.
fn fold_delivery(
    shared: &mut Shared,
    worker: &str,
    record: StoreRecord,
    millis: u64,
) -> Result<(), String> {
    // Trust nothing: the fingerprint must match the job it claims to be.
    let fp = job_fingerprint(&record.job);
    if fp != record.fp {
        return Err(format!(
            "record fingerprint {} does not match its job ({fp})",
            record.fp
        ));
    }
    let Some(&idx) = shared.by_fp.get(&fp) else {
        return Err(format!("job {fp} is not part of this campaign's grid"));
    };
    shared.queues.complete(idx);
    if shared.delivered[idx] {
        // A slow worker delivering after re-offer + re-delivery: results are
        // deterministic per job, so the copy adds nothing. Drop it.
        return Ok(());
    }
    let ok = record.status == "ok";
    let append = if ok {
        shared
            .store
            .append_ok(&record.job, record.result.unwrap_or(serde::Value::Null))
    } else {
        shared.store.append_failed(
            &record.job,
            record.error.unwrap_or_else(|| "unknown error".to_string()),
        )
    };
    append.map_err(|e| format!("cannot persist result: {e}"))?;
    let shard = shard_of_fingerprint(&fp, shared.queues.shards());
    let _ = shared.manifest.record_done(&fp, shard, worker);
    let _ = shared.timings.append(&TimingRecord {
        fp,
        label: record.job.label(),
        millis,
        worker: worker.to_string(),
    });
    shared.delivered[idx] = true;
    shared.delivered_count += 1;
    if !ok {
        shared.failed += 1;
    }
    if !shared.quiet {
        eprintln!(
            "[dist] [{}/{}] {}  {} (worker `{worker}`, {millis} ms)",
            shared.delivered_count,
            shared.pending.len(),
            if ok { "done" } else { "FAILED" },
            record.job.label()
        );
    }
    Ok(())
}

/// Serves the expanded `jobs` of a campaign named `campaign` to workers
/// connecting on `listener`, folding results into the store at `store_path`
/// until every pending job has a result, then finalizes the store in
/// canonical grid order and returns.
///
/// Already-complete fingerprints are skipped (resume), assignments and
/// deliveries are journalled to `<store>.manifest.jsonl`, and per-job
/// wall-clock goes to `<store>.timings.jsonl`. The caller is responsible
/// for having validated the jobs (the coordinator never executes one).
pub fn serve(
    listener: TcpListener,
    campaign: &str,
    jobs: &[JobSpec],
    store_path: &Path,
    opts: &ServeOptions,
) -> std::io::Result<ServeOutcome> {
    let store = ResultStore::open(store_path)?;
    let manifest = ShardManifest::open(&manifest_path(store_path))?;
    let timings = TimingsLog::open(&timings_path(store_path))?;

    // Only unfinished fingerprints are (re-)offered — the resume contract.
    let pending: Vec<JobSpec> = jobs
        .iter()
        .filter(|job| !store.is_complete(&job_fingerprint(job)))
        .cloned()
        .collect();
    let skipped = jobs.len() - pending.len();
    let total = jobs.len();

    let mut queues = ShardQueues::new(opts.shards.max(1), opts.lease);
    let mut by_fp = HashMap::new();
    for (idx, job) in pending.iter().enumerate() {
        let fp = job_fingerprint(job);
        queues.push(shard_of_fingerprint(&fp, queues.shards()), idx);
        by_fp.insert(fp, idx);
    }

    let pending_len = pending.len();
    let shared = Arc::new(Mutex::new(Shared {
        delivered: vec![false; pending_len],
        pending,
        by_fp,
        queues,
        store,
        manifest,
        timings,
        delivered_count: 0,
        failed: 0,
        workers: 0,
        reoffered: 0,
        quiet: opts.quiet,
    }));
    if !opts.quiet && skipped > 0 {
        eprintln!("[dist] [{skipped}/{total}] already complete in the store, skipping");
    }

    let stop = Arc::new(AtomicBool::new(false));
    let accept_shared = Arc::clone(&shared);
    let accept_stop = Arc::clone(&stop);
    let campaign_name = campaign.to_string();
    let chunk = opts.chunk.max(1);
    listener.set_nonblocking(true)?;
    // The accept loop runs on its own thread so the main thread can watch
    // for completion; handler threads are detached and guarded by the
    // delivered flags (late deliveries after completion are no-ops).
    let acceptor = std::thread::spawn(move || {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Blocking I/O per connection from here on.
                    let _ = stream.set_nonblocking(false);
                    let shared = Arc::clone(&accept_shared);
                    let campaign = campaign_name.clone();
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(stream, &campaign, &shared, chunk);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
        for h in handlers {
            let _ = h.join();
        }
    });

    // Wait for the grid to drain.
    loop {
        {
            let shared = shared.lock().expect("coordinator state");
            if shared.is_done() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::SeqCst);
    let _ = acceptor.join();

    let mut shared = match Arc::try_unwrap(shared) {
        Ok(mutex) => mutex.into_inner().expect("coordinator state"),
        // A handler thread still holds a reference (it is about to exit) —
        // fall back to working through the lock.
        Err(arc) => {
            let guard = arc.lock().expect("coordinator state");
            return finalize_locked(guard, jobs, total, skipped);
        }
    };
    shared.store.finalize(jobs)?;
    Ok(ServeOutcome {
        total,
        skipped,
        executed: shared.delivered_count,
        failed: shared.failed,
        workers: shared.workers,
        reoffered: shared.reoffered,
    })
}

/// The finalize path when a handler thread still shares the state.
fn finalize_locked(
    mut guard: std::sync::MutexGuard<'_, Shared>,
    jobs: &[JobSpec],
    total: usize,
    skipped: usize,
) -> std::io::Result<ServeOutcome> {
    guard.store.finalize(jobs)?;
    Ok(ServeOutcome {
        total,
        skipped,
        executed: guard.delivered_count,
        failed: guard.failed,
        workers: guard.workers,
        reoffered: guard.reoffered,
    })
}
