//! The campaign coordinator: expand once, serve shard queues over TCP,
//! fold streamed results into one byte-deterministic store.
//!
//! The coordinator owns the three artefacts of a distributed run:
//!
//! * the **result store** (`ResultStore`) — records append in arrival order
//!   while workers stream, then `finalize(&jobs)` rewrites the canonical
//!   grid order, exactly like a local `run_campaign`. Same records, same
//!   finalize: the finished store is **byte-identical to a local run**,
//!   whatever the worker count, join order, or mid-run losses were;
//! * the **shard manifest** (`<store>.manifest.jsonl`) — every lease and
//!   every delivery is journalled, so `--report` can tell "missing" from
//!   "assigned elsewhere / in-flight" and a coordinator restarted after a
//!   crash re-offers only unfinished fingerprints;
//! * the **timings sidecar** (`<store>.timings.jsonl`) — workers report
//!   per-job wall-clock with each delivery; it never touches the store.
//!
//! Scheduling is [`ShardQueues`]: jobs partition statically by fingerprint
//! prefix, workers drain their home shard first and steal from the most
//! loaded sibling's tail. A worker that disconnects (or sits on a lease past
//! its deadline) has its jobs re-offered; duplicate deliveries — a slow
//! worker finishing after its lease was re-offered and re-run — are folded
//! idempotently (results are deterministic functions of the job, so both
//! copies carry the same bytes; `ok` is never downgraded).

use crate::protocol::{write_message, Reply, Request, DRAIN_LINGER_MILLIS, WAIT_BACKOFF_MILLIS};
use crate::session::{campaign_fingerprint, session_nonce};
use std::collections::{HashMap, HashSet};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use surepath_runner::{
    job_fingerprint, log_info, log_warn, manifest_path, queue::shard_of_fingerprint, timings_path,
    JobSpec, ResultStore, ShardManifest, ShardQueues, StoreRecord, TimingRecord, TimingsLog,
};

/// Tuning knobs of [`serve`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Static shard count (fingerprint-prefix partitions). More shards than
    /// workers is fine — extra shards are drained by stealing; workers past
    /// the shard count share home shards round-robin.
    pub shards: usize,
    /// Lease duration: a job not delivered within this window is re-offered.
    pub lease: Duration,
    /// Max jobs handed out per `Fetch`.
    pub chunk: usize,
    /// Suppress progress output on stderr.
    pub quiet: bool,
    /// Stop serving after this many deliveries even if the grid is not
    /// drained (`None` = serve to completion). The partial store is
    /// finalized cleanly and a later `serve` on the same path resumes the
    /// rest — this is the fault-injection hook the crash/restart tests use
    /// to emulate a coordinator dying mid-campaign inside one process.
    pub stop_after_deliveries: Option<usize>,
    /// Bind address of the read-only live-metrics endpoint (`None` = off).
    /// Every accepted connection receives one Prometheus-style text snapshot
    /// of fleet state over plain HTTP and is closed — no request parsing, no
    /// auth, no mutation path.
    pub metrics_addr: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: 8,
            lease: Duration::from_secs(60),
            chunk: 8,
            quiet: false,
            stop_after_deliveries: None,
            metrics_addr: None,
        }
    }
}

/// What a finished distributed campaign looked like (the coordinator's
/// analogue of `CampaignOutcome`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Total jobs in the expanded grid.
    pub total: usize,
    /// Jobs skipped because the store already had them.
    pub skipped: usize,
    /// Jobs executed by workers this run.
    pub executed: usize,
    /// Of the executed jobs, how many failed (error or panic on the worker).
    pub failed: usize,
    /// Distinct workers that introduced themselves.
    pub workers: usize,
    /// Jobs that were re-offered after a lost worker or an expired lease.
    pub reoffered: usize,
    /// Connections beyond each worker's first — the auto-reconnects this
    /// coordinator served (session resumes after network failures).
    pub reconnects: usize,
    /// Whether `stop_after_deliveries` cut the run short (the store is
    /// partial but finalized; re-serving resumes).
    pub stopped: bool,
}

impl ServeOutcome {
    /// Whether every grid cell now has a successful result.
    pub fn is_complete(&self) -> bool {
        self.skipped + self.executed - self.failed == self.total
    }
}

/// Everything the per-connection handler threads share.
struct Shared {
    /// The pending jobs (not complete in the store at serve start).
    pending: Vec<JobSpec>,
    /// Fingerprint → index into `pending`.
    by_fp: HashMap<String, usize>,
    /// Shard queues + leases over `pending` indices. Leases are keyed by
    /// *connection name* (`worker#N`), not worker id: a reconnecting
    /// worker's new leases must never be released by its dead connection's
    /// late cleanup.
    queues: ShardQueues,
    store: ResultStore,
    manifest: ShardManifest,
    timings: TimingsLog,
    /// Indices of `pending` jobs whose result has been folded in.
    delivered: Vec<bool>,
    delivered_count: usize,
    failed: usize,
    /// Every worker id that ever introduced itself.
    worker_ids: HashSet<String>,
    /// Worker id → (connection name, home shard) currently speaking for it.
    live_conns: HashMap<String, (String, usize)>,
    /// Live connections homed per shard (drives least-loaded assignment).
    home_counts: Vec<usize>,
    /// Monotonic connection counter (uniquifies lease names).
    connections: usize,
    reoffered: usize,
    reconnects: usize,
    /// Mirror of `ServeOptions::stop_after_deliveries`.
    stop_budget: Option<usize>,
    /// `stop_after_deliveries` tripped: stop serving, finalize partial.
    stopped: bool,
    quiet: bool,
}

impl Shared {
    fn is_done(&self) -> bool {
        self.delivered_count == self.pending.len()
    }

    /// Whether handlers should wind down: grid drained or stop tripped.
    fn is_over(&self) -> bool {
        self.is_done() || self.stopped
    }

    /// Releases every lease `conn` holds back to its shard queue,
    /// journalling each reclaim, and forgets the connection's home-shard
    /// slot. Safe against reconnect races: lease names are unique per
    /// connection, so a dead connection can only ever release its own.
    fn reclaim_connection(&mut self, worker: &str, conn: &str, home_shard: usize) -> usize {
        let released = self.queues.release_worker(conn);
        for &idx in &released {
            let fp = job_fingerprint(&self.pending[idx]);
            let shard = shard_of_fingerprint(&fp, self.queues.shards());
            let _ = self.manifest.record_reclaimed(&fp, shard, worker);
        }
        self.reoffered += released.len();
        // The home-shard slot is freed exactly once per connection: a dead
        // connection's own (late) cleanup after a re-Hello already reclaimed
        // it must not decrement a second time.
        if self.live_conns.get(worker).map(|(c, _)| c.as_str()) == Some(conn) {
            self.live_conns.remove(worker);
            self.home_counts[home_shard] = self.home_counts[home_shard].saturating_sub(1);
        }
        released.len()
    }

    /// The home shard for a joining connection: the one with the fewest
    /// live connections homed on it, ties broken by the lowest shard index
    /// — deterministic, and immune to the join-counter drift a
    /// reconnecting fleet would otherwise accumulate.
    fn least_loaded_shard(&self) -> usize {
        self.home_counts
            .iter()
            .enumerate()
            .min_by_key(|&(idx, &count)| (count, idx))
            .map(|(idx, _)| idx)
            .unwrap_or(0)
    }
}

/// Renders one Prometheus-style text snapshot of fleet state: overall job
/// accounting, per-shard queue depth and outstanding leases, worker
/// liveness, reconnects and lease reclaims. Read-only — the metrics thread
/// takes the state lock for the duration of this render and nothing else.
fn render_metrics(shared: &Shared) -> String {
    let mut out = String::new();
    let total = shared.pending.len();
    out.push_str("# TYPE surepath_jobs_total gauge\n");
    out.push_str(&format!("surepath_jobs_total {total}\n"));
    out.push_str("# TYPE surepath_jobs_delivered gauge\n");
    out.push_str(&format!(
        "surepath_jobs_delivered {}\n",
        shared.delivered_count
    ));
    out.push_str("# TYPE surepath_jobs_failed gauge\n");
    out.push_str(&format!("surepath_jobs_failed {}\n", shared.failed));
    out.push_str("# TYPE surepath_jobs_pending gauge\n");
    for (shard, queued) in shared.queues.queued_per_shard().iter().enumerate() {
        out.push_str(&format!(
            "surepath_jobs_pending{{shard=\"{shard}\"}} {queued}\n"
        ));
    }
    out.push_str("# TYPE surepath_jobs_leased gauge\n");
    for (shard, leased) in shared.queues.leased_per_shard().iter().enumerate() {
        out.push_str(&format!(
            "surepath_jobs_leased{{shard=\"{shard}\"}} {leased}\n"
        ));
    }
    out.push_str("# TYPE surepath_workers_live gauge\n");
    out.push_str(&format!(
        "surepath_workers_live {}\n",
        shared.live_conns.len()
    ));
    out.push_str("# TYPE surepath_workers_total gauge\n");
    out.push_str(&format!(
        "surepath_workers_total {}\n",
        shared.worker_ids.len()
    ));
    out.push_str("# TYPE surepath_reconnects_total counter\n");
    out.push_str(&format!(
        "surepath_reconnects_total {}\n",
        shared.reconnects
    ));
    out.push_str("# TYPE surepath_lease_reclaims_total counter\n");
    out.push_str(&format!(
        "surepath_lease_reclaims_total {}\n",
        shared.reoffered
    ));
    out
}

/// Answers one metrics connection: best-effort drain of whatever request the
/// client sent (so well-behaved HTTP clients are not reset mid-send), then
/// one HTTP/1.0 response carrying `body`, then close. Errors are swallowed —
/// a misbehaving scraper must never disturb the campaign.
fn answer_metrics_request(mut stream: TcpStream, body: &str) {
    use std::io::{Read as _, Write as _};
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut scratch = [0u8; 1024];
    let _ = stream.read(&mut scratch);
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// What one polled read produced. A malformed frame is deliberately *not*
/// collapsed into "connection gone": a worker speaking garbage deserves a
/// `ProtocolError` naming the offending line, a dead worker deserves
/// silence — the two must stay distinguishable end to end.
enum ReadOutcome {
    /// A well-formed request (boxed: `Deliver` dwarfs the other variants).
    Request(Box<Request>),
    /// EOF, a transport error, or `keep_waiting` said stop.
    Disconnected,
    /// A complete line arrived but did not parse; carries the line.
    Malformed(String),
}

/// Reads one request off a connection whose socket has a short read
/// timeout, treating each timeout as a poll tick rather than a failure:
/// partially received lines accumulate across ticks (so a message split
/// across TCP segments can never desync the stream), and `keep_waiting`
/// decides whether to go on waiting — the handler passes "campaign not
/// done yet".
fn read_request_polling(
    reader: &mut BufReader<TcpStream>,
    mut keep_waiting: impl FnMut() -> bool,
) -> ReadOutcome {
    use std::io::BufRead as _;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return ReadOutcome::Disconnected, // clean EOF
            // `read_line` returns only at the delimiter or EOF; a line
            // without its newline is a connection that died mid-message.
            Ok(_) if !line.ends_with('\n') => return ReadOutcome::Disconnected,
            Ok(_) => {
                let trimmed = line.trim_end();
                return match serde_json::from_str(trimmed) {
                    Ok(request) => ReadOutcome::Request(request),
                    Err(_) => ReadOutcome::Malformed(trimmed.to_string()),
                };
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Poll tick; any bytes already read stay in `line`.
                if !keep_waiting() {
                    return ReadOutcome::Disconnected;
                }
            }
            Err(_) => return ReadOutcome::Disconnected,
        }
    }
}

/// The `ProtocolError` reply for a frame that did not parse: names the
/// offending line (clipped — it may be arbitrary garbage) so the worker's
/// error message is actionable.
fn malformed_reply(line: &str) -> Reply {
    const CLIP: usize = 120;
    let shown: String = line.chars().take(CLIP).collect();
    let ellipsis = if line.chars().count() > CLIP {
        "…"
    } else {
        ""
    };
    Reply::ProtocolError {
        message: format!("malformed frame: `{shown}{ellipsis}` is not a valid request"),
    }
}

/// One worker connection, served to completion on its own thread.
///
/// Reads poll with a short timeout, but a timeout is **not** a verdict on
/// the worker: a worker crunching a long job is legitimately silent for the
/// whole job duration, so the handler just keeps waiting (the job's *lease*
/// is what re-offers the work if the worker really is hung). The poll
/// exists so the handler can notice campaign completion and exit instead of
/// blocking the coordinator's shutdown on a worker that will never speak
/// again. Only EOF / a transport error means the worker is gone — its
/// leases re-offer immediately.
fn handle_connection(
    stream: TcpStream,
    campaign: &str,
    fingerprint: &str,
    session: &str,
    shared: &Mutex<Shared>,
    chunk: usize,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;

    // Campaign completion does not end the conversation instantly: a worker
    // sleeping through a Wait backoff still deserves its final `Drained`
    // instead of a closed socket, so the handler lingers for a grace period
    // after it first observes completion ([`DRAIN_LINGER_MILLIS`], sized
    // against the workers' [`WAIT_BACKOFF_MILLIS`]) and only then stops
    // waiting for silent peers.
    let mut done_at: Option<Instant> = None;
    let mut keep_waiting = move |shared: &Mutex<Shared>| -> bool {
        if !shared.lock().expect("coordinator state").is_over() {
            return true;
        }
        done_at.get_or_insert_with(Instant::now).elapsed()
            < Duration::from_millis(DRAIN_LINGER_MILLIS)
    };

    // First message must be Hello; it names the worker for leases/manifest.
    let (worker, resumed_session) = match read_request_polling(&mut reader, || keep_waiting(shared))
    {
        ReadOutcome::Request(request) => match *request {
            Request::Hello { worker, session } => (worker, session),
            _ => {
                let _ = write_message(
                    &mut writer,
                    &Reply::ProtocolError {
                        message: "first message must be Hello".into(),
                    },
                );
                return;
            }
        },
        ReadOutcome::Malformed(line) => {
            let _ = write_message(&mut writer, &malformed_reply(&line));
            return;
        }
        ReadOutcome::Disconnected => return,
    };
    // The connection name keys this connection's leases; the worker id
    // keys manifest/timing rows. Keeping them separate is what makes
    // re-Hello reclaim safe: releasing `worker#3` can never touch the
    // leases `worker#4` (the same worker, reconnected) holds.
    let (conn, shard) = {
        let mut shared = shared.lock().expect("coordinator state");
        shared.connections += 1;
        let conn = format!("{worker}#{}", shared.connections);
        // A previous connection still speaking for this worker id is dead
        // weight (the worker would not re-Hello otherwise): reclaim its
        // leases now instead of waiting for EOF detection or lease expiry.
        if let Some((old_conn, old_shard)) = shared.live_conns.get(&worker).cloned() {
            let released = shared.reclaim_connection(&worker, &old_conn, old_shard);
            if released > 0 && !shared.quiet {
                log_warn!(
                    "dist",
                    "worker `{worker}` re-introduced itself; reclaimed {released} \
                     lease(s) from its previous connection"
                );
            }
        }
        let shard = shared.least_loaded_shard();
        shared.home_counts[shard] += 1;
        shared
            .live_conns
            .insert(worker.clone(), (conn.clone(), shard));
        let fresh = shared.worker_ids.insert(worker.clone());
        let resumed = resumed_session.as_deref() == Some(session);
        if !fresh {
            shared.reconnects += 1;
        }
        if !shared.quiet {
            log_info!(
                "dist",
                "worker `{worker}` {} (home shard {shard})",
                if fresh {
                    "joined"
                } else if resumed {
                    "reconnected (same session)"
                } else {
                    "reconnected"
                }
            );
        }
        (conn, shard)
    };
    if write_message(
        &mut writer,
        &Reply::Welcome {
            campaign: campaign.to_string(),
            shard,
            session: session.to_string(),
            fingerprint: fingerprint.to_string(),
        },
    )
    .is_err()
    {
        let mut shared = shared.lock().expect("coordinator state");
        shared.reclaim_connection(&worker, &conn, shard);
        return;
    }

    loop {
        let request = match read_request_polling(&mut reader, || keep_waiting(shared)) {
            ReadOutcome::Request(request) => *request,
            // A complete but unparseable line: the peer is alive but not
            // speaking the protocol. Name the offending frame, then close —
            // its leases re-offer like any other lost connection.
            ReadOutcome::Malformed(line) => {
                let _ = write_message(&mut writer, &malformed_reply(&line));
                let mut shared = shared.lock().expect("coordinator state");
                let released = shared.reclaim_connection(&worker, &conn, shard);
                if !shared.quiet {
                    log_warn!(
                        "dist",
                        "worker `{worker}` sent a malformed frame; closing \
                         ({released} lease(s) re-offered)"
                    );
                }
                return;
            }
            // EOF, a broken pipe, or campaign completion while the worker
            // was silent. If the worker is really gone its leases re-offer
            // immediately instead of waiting for the deadline; on
            // completion there are no leases left to release.
            ReadOutcome::Disconnected => {
                let mut shared = shared.lock().expect("coordinator state");
                let released = shared.reclaim_connection(&worker, &conn, shard);
                if released > 0 && !shared.quiet {
                    log_warn!(
                        "dist",
                        "worker `{worker}` lost; re-offering {released} job(s)"
                    );
                }
                return;
            }
        };
        // Crash emulation: once the stop hook has tripped, this coordinator
        // behaves like a killed process — connections sever without a
        // goodbye, so workers exercise their real reconnect path instead of
        // receiving a polite `Drained` no crashed process could send.
        {
            let mut shared = shared.lock().expect("coordinator state");
            if shared.stopped {
                shared.reclaim_connection(&worker, &conn, shard);
                return;
            }
        }
        let reply = match request {
            Request::Hello { .. } => Reply::ProtocolError {
                message: "duplicate Hello".into(),
            },
            Request::Fetch { max } => {
                let mut shared = shared.lock().expect("coordinator state");
                let now = Instant::now();
                let reaped = shared.queues.reap_expired(now);
                shared.reoffered += reaped;
                if reaped > 0 && !shared.quiet {
                    log_warn!("dist", "{reaped} lease(s) expired; re-offering");
                }
                // Both sides bound the batch: the worker's appetite and the
                // coordinator's `--chunk` cap (small chunks keep expensive
                // tails spread across workers).
                let taken = shared
                    .queues
                    .pop_for(&conn, shard, max.clamp(1, chunk), now);
                // A re-queued copy of a job that was meanwhile delivered by
                // its original (slow) worker must not run again: release the
                // fresh lease and drop it here.
                let mut fresh = Vec::with_capacity(taken.len());
                for idx in taken {
                    if shared.delivered[idx] {
                        shared.queues.complete(idx);
                    } else {
                        fresh.push(idx);
                    }
                }
                if fresh.is_empty() {
                    if shared.is_done() {
                        Reply::Drained
                    } else {
                        // Everything is leased out elsewhere (or the dropped
                        // duplicates emptied the batch): back off briefly.
                        Reply::Wait {
                            millis: WAIT_BACKOFF_MILLIS,
                        }
                    }
                } else {
                    let mut jobs = Vec::with_capacity(fresh.len());
                    for idx in &fresh {
                        let job = shared.pending[*idx].clone();
                        let fp = job_fingerprint(&job);
                        let job_shard = shard_of_fingerprint(&fp, shared.queues.shards());
                        let _ = shared.manifest.record_assigned(&fp, job_shard, &worker);
                        jobs.push(job);
                    }
                    Reply::Assign { jobs }
                }
            }
            Request::Deliver { record, millis } => {
                let mut shared = shared.lock().expect("coordinator state");
                match fold_delivery(&mut shared, &worker, record, millis) {
                    Ok(()) => {
                        if let Some(budget) = shared.stop_budget {
                            if shared.delivered_count >= budget {
                                shared.stopped = true;
                            }
                        }
                        if shared.stopped {
                            // The delivery that tripped the budget is safely
                            // folded; now "crash" — sever without an ack.
                            shared.reclaim_connection(&worker, &conn, shard);
                            return;
                        }
                        if shared.is_done() {
                            Reply::Drained
                        } else {
                            // No reply needed per delivery; but the protocol
                            // is strict request/reply, so acknowledge with
                            // the next state: more work or wait.
                            Reply::Wait { millis: 0 }
                        }
                    }
                    Err(message) => Reply::ProtocolError { message },
                }
            }
        };
        let done = matches!(reply, Reply::Drained);
        if write_message(&mut writer, &reply).is_err() {
            let mut shared = shared.lock().expect("coordinator state");
            shared.reclaim_connection(&worker, &conn, shard);
            return;
        }
        if done {
            let mut shared = shared.lock().expect("coordinator state");
            shared.reclaim_connection(&worker, &conn, shard);
            return;
        }
    }
}

/// Folds one delivered record into store + manifest + timings. Duplicate
/// and stale deliveries (lease expired, job re-offered and already
/// delivered by someone else) are dropped idempotently.
fn fold_delivery(
    shared: &mut Shared,
    worker: &str,
    record: StoreRecord,
    millis: u64,
) -> Result<(), String> {
    // Trust nothing: the fingerprint must match the job it claims to be.
    let fp = job_fingerprint(&record.job);
    if fp != record.fp {
        return Err(format!(
            "record fingerprint {} does not match its job ({fp})",
            record.fp
        ));
    }
    let Some(&idx) = shared.by_fp.get(&fp) else {
        return Err(format!("job {fp} is not part of this campaign's grid"));
    };
    shared.queues.complete(idx);
    if shared.delivered[idx] {
        // A slow worker delivering after re-offer + re-delivery: results are
        // deterministic per job, so the copy adds nothing. Drop it.
        return Ok(());
    }
    let ok = record.status == "ok";
    let append = if ok {
        shared
            .store
            .append_ok(&record.job, record.result.unwrap_or(serde::Value::Null))
    } else {
        shared.store.append_failed(
            &record.job,
            record.error.unwrap_or_else(|| "unknown error".to_string()),
        )
    };
    append.map_err(|e| format!("cannot persist result: {e}"))?;
    let shard = shard_of_fingerprint(&fp, shared.queues.shards());
    let _ = shared.manifest.record_done(&fp, shard, worker);
    let _ = shared.timings.append(&TimingRecord {
        fp,
        label: record.job.label(),
        millis,
        worker: worker.to_string(),
    });
    shared.delivered[idx] = true;
    shared.delivered_count += 1;
    if !ok {
        shared.failed += 1;
    }
    if !shared.quiet {
        log_info!(
            "dist",
            "[{}/{}] {}  {} (worker `{worker}`, {millis} ms)",
            shared.delivered_count,
            shared.pending.len(),
            if ok { "done" } else { "FAILED" },
            record.job.label()
        );
    }
    Ok(())
}

/// Serves the expanded `jobs` of a campaign named `campaign` to workers
/// connecting on `listener`, folding results into the store at `store_path`
/// until every pending job has a result, then finalizes the store in
/// canonical grid order and returns.
///
/// Already-complete fingerprints are skipped (resume), assignments and
/// deliveries are journalled to `<store>.manifest.jsonl`, and per-job
/// wall-clock goes to `<store>.timings.jsonl`. The caller is responsible
/// for having validated the jobs (the coordinator never executes one).
pub fn serve(
    listener: TcpListener,
    campaign: &str,
    jobs: &[JobSpec],
    store_path: &Path,
    opts: &ServeOptions,
) -> std::io::Result<ServeOutcome> {
    let store = ResultStore::open(store_path)?;
    let manifest = ShardManifest::open(&manifest_path(store_path))?;
    let timings = TimingsLog::open(&timings_path(store_path))?;

    // Only unfinished fingerprints are (re-)offered — the resume contract.
    let pending: Vec<JobSpec> = jobs
        .iter()
        .filter(|job| !store.is_complete(&job_fingerprint(job)))
        .cloned()
        .collect();
    let skipped = jobs.len() - pending.len();
    let total = jobs.len();

    let mut queues = ShardQueues::new(opts.shards.max(1), opts.lease);
    let mut by_fp = HashMap::new();
    for (idx, job) in pending.iter().enumerate() {
        let fp = job_fingerprint(job);
        queues.push(shard_of_fingerprint(&fp, queues.shards()), idx);
        by_fp.insert(fp, idx);
    }

    let pending_len = pending.len();
    let shard_count = queues.shards();
    let shared = Arc::new(Mutex::new(Shared {
        delivered: vec![false; pending_len],
        pending,
        by_fp,
        queues,
        store,
        manifest,
        timings,
        delivered_count: 0,
        failed: 0,
        worker_ids: HashSet::new(),
        live_conns: HashMap::new(),
        home_counts: vec![0; shard_count],
        connections: 0,
        reoffered: 0,
        reconnects: 0,
        stop_budget: opts.stop_after_deliveries,
        stopped: false,
        quiet: opts.quiet,
    }));
    if !opts.quiet && skipped > 0 {
        log_info!(
            "dist",
            "[{skipped}/{total}] already complete in the store, skipping"
        );
    }

    let stop = Arc::new(AtomicBool::new(false));

    // The live-metrics endpoint: its own listener, its own thread, read-only
    // over the shared state. It serves snapshots until the campaign ends.
    let metrics_thread = match &opts.metrics_addr {
        Some(addr) => {
            let metrics_listener = TcpListener::bind(addr)?;
            if !opts.quiet {
                log_info!(
                    "dist",
                    "metrics endpoint listening on {}",
                    metrics_listener.local_addr()?
                );
            }
            metrics_listener.set_nonblocking(true)?;
            let metrics_shared = Arc::clone(&shared);
            let metrics_stop = Arc::clone(&stop);
            Some(std::thread::spawn(move || {
                while !metrics_stop.load(Ordering::SeqCst) {
                    match metrics_listener.accept() {
                        Ok((stream, _)) => {
                            let body = {
                                let shared = metrics_shared.lock().expect("coordinator state");
                                render_metrics(&shared)
                            };
                            answer_metrics_request(stream, &body);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            }))
        }
        None => None,
    };

    let accept_shared = Arc::clone(&shared);
    let accept_stop = Arc::clone(&stop);
    let campaign_name = campaign.to_string();
    // The session nonce and campaign fingerprint are fixed for the lifetime
    // of this serve: every Welcome quotes them, so a reconnecting worker can
    // tell "coordinator restarted, same campaign" from "different campaign".
    let session = session_nonce();
    let fingerprint = campaign_fingerprint(campaign, jobs);
    let chunk = opts.chunk.max(1);
    listener.set_nonblocking(true)?;
    // The accept loop runs on its own thread so the main thread can watch
    // for completion; handler threads are detached and guarded by the
    // delivered flags (late deliveries after completion are no-ops).
    let acceptor = std::thread::spawn(move || {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Blocking I/O per connection from here on.
                    let _ = stream.set_nonblocking(false);
                    let shared = Arc::clone(&accept_shared);
                    let campaign = campaign_name.clone();
                    let session = session.clone();
                    let fingerprint = fingerprint.clone();
                    handlers.push(std::thread::spawn(move || {
                        handle_connection(
                            stream,
                            &campaign,
                            &fingerprint,
                            &session,
                            &shared,
                            chunk,
                        );
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
        for h in handlers {
            let _ = h.join();
        }
    });

    // Wait for the grid to drain (or the stop hook to trip).
    loop {
        {
            let shared = shared.lock().expect("coordinator state");
            if shared.is_over() {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::SeqCst);
    let _ = acceptor.join();
    if let Some(handle) = metrics_thread {
        let _ = handle.join();
    }

    let mut shared = match Arc::try_unwrap(shared) {
        Ok(mutex) => mutex.into_inner().expect("coordinator state"),
        // A handler thread still holds a reference (it is about to exit) —
        // fall back to working through the lock.
        Err(arc) => {
            let guard = arc.lock().expect("coordinator state");
            return finalize_locked(guard, jobs, total, skipped);
        }
    };
    shared.store.finalize(jobs)?;
    Ok(outcome_of(&shared, total, skipped))
}

/// The finalize path when a handler thread still shares the state.
fn finalize_locked(
    mut guard: std::sync::MutexGuard<'_, Shared>,
    jobs: &[JobSpec],
    total: usize,
    skipped: usize,
) -> std::io::Result<ServeOutcome> {
    guard.store.finalize(jobs)?;
    Ok(outcome_of(&guard, total, skipped))
}

fn outcome_of(shared: &Shared, total: usize, skipped: usize) -> ServeOutcome {
    ServeOutcome {
        total,
        skipped,
        executed: shared.delivered_count,
        failed: shared.failed,
        workers: shared.worker_ids.len(),
        reoffered: shared.reoffered,
        reconnects: shared.reconnects,
        stopped: shared.stopped,
    }
}
