//! End-to-end tests of the coordinator/worker fan-out with a fake
//! deterministic workload: the determinism contract (a distributed store is
//! byte-identical to a local run's, for any worker count and join order),
//! resume, lease expiry and worker loss.

use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;
use surepath_dist::{
    read_message, run_worker, serve, write_message, Reply, Request, ServeOptions, WorkerOptions,
};
use surepath_runner::{
    job_fingerprint, manifest_path, run_campaign_with, CampaignSpec, JobSpec, ResultStore,
    RunOptions, ShardManifest, TopologySpec,
};

fn spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        topologies: vec![TopologySpec {
            sides: vec![4, 4],
            concentration: None,
        }],
        mechanisms: Some(vec!["a".into(), "b".into()]),
        traffics: Some(vec!["uniform".into()]),
        scenarios: Some(vec!["none".into()]),
        loads: Some(vec![0.25, 0.5, 0.75]),
        seeds: Some(vec![1, 2, 3, 4]),
        ..CampaignSpec::default()
    }
}

/// Deterministic fake workload: the result is a pure function of the job.
fn fake_result(job: &JobSpec) -> Result<serde::Value, String> {
    let score = job.seed as f64 * job.load.unwrap_or(1.0) + job.sides.len() as f64;
    serde_json::to_value(&score).map_err(|e| e.to_string())
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("surepath-dist-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

fn clean(path: &std::path::Path) {
    for p in [
        path.to_path_buf(),
        manifest_path(path),
        surepath_runner::timings_path(path),
    ] {
        let _ = std::fs::remove_file(p);
    }
}

/// The byte-ground-truth: the same spec run by the local driver.
fn local_store_bytes(s: &CampaignSpec, name: &str) -> Vec<u8> {
    let path = temp_store(name);
    clean(&path);
    run_campaign_with(
        s,
        &path,
        &RunOptions {
            threads: Some(2),
            quiet: true,
            timings: false,
            ..RunOptions::default()
        },
        fake_result,
    )
    .unwrap();
    let bytes = std::fs::read(&path).unwrap();
    clean(&path);
    bytes
}

/// Serves `s` on an ephemeral port with `workers` in-process workers.
fn serve_with_workers(
    s: &CampaignSpec,
    store: &std::path::Path,
    workers: usize,
    opts: ServeOptions,
) -> surepath_dist::ServeOutcome {
    let jobs = s.expand().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let worker_handles: Vec<_> = (0..workers)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(
                    &addr,
                    &format!("test-worker-{i}"),
                    &WorkerOptions {
                        threads: Some(2),
                        ..WorkerOptions::default()
                    },
                    fake_result,
                )
            })
        })
        .collect();
    let outcome = serve(listener, &s.name, &jobs, store, &opts).unwrap();
    for h in worker_handles {
        h.join().unwrap().unwrap();
    }
    outcome
}

fn quiet_opts() -> ServeOptions {
    ServeOptions {
        quiet: true,
        ..ServeOptions::default()
    }
}

#[test]
fn distributed_stores_are_byte_identical_to_local_for_any_worker_count() {
    let s = spec("dist-bytes");
    let local = local_store_bytes(&s, "dist-bytes-local");
    for workers in [1usize, 2, 4] {
        let path = temp_store(&format!("dist-bytes-{workers}w"));
        clean(&path);
        let outcome = serve_with_workers(&s, &path, workers, quiet_opts());
        assert_eq!(outcome.total, 24);
        assert_eq!(outcome.executed, 24);
        assert_eq!(outcome.failed, 0);
        assert_eq!(outcome.workers, workers);
        assert!(outcome.is_complete());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            local,
            "{workers}-worker distributed store must match the local bytes"
        );
        // The manifest records every job as done.
        let manifest = ShardManifest::open_read_only(&manifest_path(&path)).unwrap();
        assert_eq!(manifest.len(), 24);
        assert!(manifest
            .records_in_order()
            .all(|r| r.status == surepath_runner::manifest::MANIFEST_DONE));
        clean(&path);
    }
}

#[test]
fn distributed_run_resumes_only_missing_fingerprints() {
    let s = spec("dist-resume");
    let path = temp_store("dist-resume");
    clean(&path);
    let jobs = s.expand().unwrap();
    // Simulate an interrupted earlier run: 10 of 24 results already landed.
    {
        let mut store = ResultStore::open(&path).unwrap();
        for job in jobs.iter().take(10) {
            store.append_ok(job, fake_result(job).unwrap()).unwrap();
        }
    }
    let outcome = serve_with_workers(&s, &path, 2, quiet_opts());
    assert_eq!(outcome.skipped, 10);
    assert_eq!(outcome.executed, 14);
    assert!(outcome.is_complete());
    assert_eq!(
        std::fs::read(&path).unwrap(),
        local_store_bytes(&s, "dist-resume-local"),
        "resumed distributed store matches an uninterrupted local run"
    );
    clean(&path);
}

#[test]
fn worker_failures_are_recorded_per_job_not_fatal() {
    let s = spec("dist-failures");
    let path = temp_store("dist-failures");
    clean(&path);
    let jobs = s.expand().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            run_worker(
                &addr,
                "flaky",
                &WorkerOptions {
                    threads: Some(2),
                    ..WorkerOptions::default()
                },
                |job: &JobSpec| {
                    if job.mechanism.as_deref() == Some("b") && job.seed == 2 {
                        panic!("simulated simulator bug");
                    }
                    if job.mechanism.as_deref() == Some("b") && job.seed == 3 {
                        return Err("unknown mechanism".to_string());
                    }
                    fake_result(job)
                },
            )
        })
    };
    let outcome = serve(listener, &s.name, &jobs, &path, &quiet_opts()).unwrap();
    worker.join().unwrap().unwrap();
    assert_eq!(outcome.executed, 24);
    assert_eq!(outcome.failed, 6, "2 bad seeds x 3 loads on mechanism b");
    assert!(!outcome.is_complete());
    let store = ResultStore::open_read_only(&path).unwrap();
    let failed: Vec<_> = store.records().filter(|r| r.status == "failed").collect();
    assert_eq!(failed.len(), 6);
    assert!(failed
        .iter()
        .any(|r| r.error.as_deref().unwrap().contains("panic")));
    clean(&path);
}

/// A deliberately bad citizen: says hello, takes a batch, and vanishes
/// without delivering anything — the mid-campaign worker kill.
fn killed_worker(addr: &str, max: usize) -> usize {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_message(
        &mut writer,
        &Request::Hello {
            worker: "doomed".into(),
            session: None,
        },
    )
    .unwrap();
    let _: Reply = read_message(&mut reader).unwrap().unwrap();
    write_message(&mut writer, &Request::Fetch { max }).unwrap();
    match read_message::<Reply>(&mut reader).unwrap().unwrap() {
        Reply::Assign { jobs } => jobs.len(), // dropped: connection closes here
        other => panic!("expected an assignment, got {other:?}"),
    }
}

#[test]
fn killed_worker_jobs_are_reoffered_and_the_store_stays_byte_identical() {
    let s = spec("dist-kill");
    let path = temp_store("dist-kill");
    clean(&path);
    let jobs = s.expand().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let (name, jobs, path) = (s.name.clone(), jobs.clone(), path.clone());
        std::thread::spawn(move || serve(listener, &name, &jobs, &path, &quiet_opts()))
    };

    // The victim takes a fat batch and dies with it.
    let taken = killed_worker(&addr, 8);
    assert!(taken > 0, "the victim actually held leases");

    // A healthy worker then drains the whole grid, victim's share included.
    let survivor = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            run_worker(
                &addr,
                "survivor",
                &WorkerOptions {
                    threads: Some(2),
                    ..WorkerOptions::default()
                },
                fake_result,
            )
        })
    };
    let outcome = server.join().unwrap().unwrap();
    survivor.join().unwrap().unwrap();
    assert_eq!(outcome.executed, 24, "every job, including re-offered ones");
    assert!(
        outcome.reoffered >= taken,
        "the victim's leases were re-offered"
    );
    assert!(outcome.is_complete());
    assert_eq!(
        std::fs::read(&path).unwrap(),
        local_store_bytes(&s, "dist-kill-local"),
        "worker loss must not perturb the final bytes"
    );
    clean(&path);
}

/// A hung worker: holds leases on an open connection and never delivers.
/// The lease deadline, not the connection state, must free its jobs.
#[test]
fn expired_leases_are_reoffered_while_the_connection_stays_open() {
    let s = spec("dist-lease");
    let path = temp_store("dist-lease");
    clean(&path);
    let jobs = s.expand().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let opts = ServeOptions {
        lease: Duration::from_millis(100),
        quiet: true,
        ..ServeOptions::default()
    };
    let server = {
        let (name, jobs, path, opts) = (s.name.clone(), jobs.clone(), path.clone(), opts.clone());
        std::thread::spawn(move || serve(listener, &name, &jobs, &path, &opts))
    };

    // The hung worker: fetches a batch, then sits on the open socket.
    let hung_stream = TcpStream::connect(&addr).unwrap();
    let mut hung_reader = std::io::BufReader::new(hung_stream.try_clone().unwrap());
    let mut hung_writer = hung_stream.try_clone().unwrap();
    write_message(
        &mut hung_writer,
        &Request::Hello {
            worker: "hung".into(),
            session: None,
        },
    )
    .unwrap();
    let _: Reply = read_message(&mut hung_reader).unwrap().unwrap();
    write_message(&mut hung_writer, &Request::Fetch { max: 6 }).unwrap();
    let taken = match read_message::<Reply>(&mut hung_reader).unwrap().unwrap() {
        Reply::Assign { jobs } => jobs.len(),
        other => panic!("expected an assignment, got {other:?}"),
    };
    assert!(taken > 0);

    let survivor = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            run_worker(
                &addr,
                "survivor",
                &WorkerOptions {
                    threads: Some(2),
                    ..WorkerOptions::default()
                },
                fake_result,
            )
        })
    };
    let outcome = server.join().unwrap().unwrap();
    survivor.join().unwrap().unwrap();
    drop(hung_stream);
    assert!(outcome.is_complete());
    assert!(
        outcome.reoffered >= taken,
        "expired leases were re-offered: {outcome:?}"
    );
    assert_eq!(
        std::fs::read(&path).unwrap(),
        local_store_bytes(&s, "dist-lease-local"),
        "lease expiry must not perturb the final bytes"
    );
    clean(&path);
}

#[test]
fn manifest_distinguishes_in_flight_from_missing() {
    // Drive the protocol by hand: assign a batch, deliver one record, then
    // inspect the manifest mid-campaign (coordinator still serving).
    let s = spec("dist-manifest");
    let path = temp_store("dist-manifest");
    clean(&path);
    let jobs = s.expand().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let serve_jobs = jobs.clone();
    let serve_path = path.clone();
    let server_name = s.name.clone();
    let server = std::thread::spawn(move || {
        serve(
            listener,
            &server_name,
            &serve_jobs,
            &serve_path,
            &ServeOptions {
                quiet: true,
                ..ServeOptions::default()
            },
        )
    });

    let stream = TcpStream::connect(&addr).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_message(
        &mut writer,
        &Request::Hello {
            worker: "manual".into(),
            session: None,
        },
    )
    .unwrap();
    let _: Reply = read_message(&mut reader).unwrap().unwrap();
    write_message(&mut writer, &Request::Fetch { max: 4 }).unwrap();
    let batch = match read_message::<Reply>(&mut reader).unwrap().unwrap() {
        Reply::Assign { jobs } => jobs,
        other => panic!("expected an assignment, got {other:?}"),
    };
    // Deliver exactly one of the four.
    let job = batch[0].clone();
    write_message(
        &mut writer,
        &Request::Deliver {
            record: surepath_runner::StoreRecord {
                fp: job_fingerprint(&job),
                status: "ok".into(),
                job: job.clone(),
                result: Some(fake_result(&job).unwrap()),
                error: None,
            },
            millis: 5,
        },
    )
    .unwrap();
    let _: Reply = read_message(&mut reader).unwrap().unwrap();

    // Mid-campaign: 4 assigned, 1 done → 3 in flight, the rest missing.
    let manifest = ShardManifest::open_read_only(&manifest_path(&path)).unwrap();
    let store = ResultStore::open_read_only(&path).unwrap();
    assert_eq!(manifest.len(), 4);
    let in_flight = manifest.in_flight(&|fp: &str| store.is_complete(fp));
    assert_eq!(in_flight.len(), 3);
    assert!(in_flight.iter().all(|r| r.worker == "manual"));
    let assigned_fps: std::collections::HashSet<&str> =
        manifest.records_in_order().map(|r| r.fp.as_str()).collect();
    let missing = jobs
        .iter()
        .filter(|j| !assigned_fps.contains(job_fingerprint(j).as_str()))
        .count();
    assert_eq!(missing, jobs.len() - 4, "unassigned jobs are `missing`");

    // Hang up: the manual worker's three leases re-offer immediately (no
    // need to wait out the lease deadline), and a real worker finishes the
    // campaign so the server thread exits.
    writer.shutdown(std::net::Shutdown::Both).unwrap();
    drop(writer);
    let finisher = std::thread::spawn(move || {
        run_worker(&addr, "finisher", &WorkerOptions::default(), fake_result)
    });
    let outcome = server.join().unwrap().unwrap();
    finisher.join().unwrap().unwrap();
    assert!(outcome.is_complete());
    assert!(outcome.reoffered >= 3, "{outcome:?}");
    clean(&path);
}

/// Fetch/deliver in a loop over a manual connection until `Drained`,
/// returning every job label this connection executed.
fn drain_via_client(
    reader: &mut std::io::BufReader<TcpStream>,
    writer: &mut TcpStream,
    max: usize,
) -> Vec<String> {
    let mut ran = Vec::new();
    loop {
        write_message(writer, &Request::Fetch { max }).unwrap();
        match read_message::<Reply>(reader).unwrap().unwrap() {
            Reply::Assign { jobs } => {
                for job in jobs {
                    ran.push(job.label());
                    write_message(
                        writer,
                        &Request::Deliver {
                            record: surepath_runner::StoreRecord {
                                fp: job_fingerprint(&job),
                                status: "ok".into(),
                                job: job.clone(),
                                result: Some(fake_result(&job).unwrap()),
                                error: None,
                            },
                            millis: 1,
                        },
                    )
                    .unwrap();
                    match read_message::<Reply>(reader).unwrap().unwrap() {
                        Reply::Drained => return ran,
                        Reply::Wait { .. } => {}
                        other => panic!("unexpected delivery ack {other:?}"),
                    }
                }
            }
            Reply::Wait { millis } => std::thread::sleep(Duration::from_millis(millis.max(10))),
            Reply::Drained => return ran,
            other => panic!("unexpected fetch reply {other:?}"),
        }
    }
}

/// The re-Hello reclaim contract: when a worker id re-introduces itself,
/// its previous connection's leases are reclaimed *immediately* (no lease
/// expiry involved — the lease here is 10 minutes), already-delivered jobs
/// are never re-offered (the `delivered[idx]` dedup), and the store still
/// comes out byte-identical.
#[test]
fn re_hello_reclaims_the_old_connections_leases_without_double_running() {
    let s = spec("dist-rehello");
    let path = temp_store("dist-rehello");
    clean(&path);
    let jobs = s.expand().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let opts = ServeOptions {
        lease: Duration::from_secs(600), // reclaim must not depend on expiry
        quiet: true,
        ..ServeOptions::default()
    };
    let server = {
        let (name, jobs, path, opts) = (s.name.clone(), jobs.clone(), path.clone(), opts);
        std::thread::spawn(move || serve(listener, &name, &jobs, &path, &opts))
    };

    // Connection 1: hello as `phoenix`, lease a batch, deliver two jobs,
    // then go silent with the socket still open (a half-dead worker).
    let stream1 = TcpStream::connect(&addr).unwrap();
    let mut reader1 = std::io::BufReader::new(stream1.try_clone().unwrap());
    let mut writer1 = stream1.try_clone().unwrap();
    write_message(
        &mut writer1,
        &Request::Hello {
            worker: "phoenix".into(),
            session: None,
        },
    )
    .unwrap();
    let (nonce1, fingerprint1) = match read_message::<Reply>(&mut reader1).unwrap().unwrap() {
        Reply::Welcome {
            session,
            fingerprint,
            ..
        } => (session, fingerprint),
        other => panic!("expected Welcome, got {other:?}"),
    };
    write_message(&mut writer1, &Request::Fetch { max: 6 }).unwrap();
    let batch = match read_message::<Reply>(&mut reader1).unwrap().unwrap() {
        Reply::Assign { jobs } => jobs,
        other => panic!("expected an assignment, got {other:?}"),
    };
    assert!(batch.len() >= 3, "need a few leases to strand");
    let mut delivered_labels = Vec::new();
    for job in batch.iter().take(2) {
        delivered_labels.push(job.label());
        write_message(
            &mut writer1,
            &Request::Deliver {
                record: surepath_runner::StoreRecord {
                    fp: job_fingerprint(job),
                    status: "ok".into(),
                    job: job.clone(),
                    result: Some(fake_result(job).unwrap()),
                    error: None,
                },
                millis: 1,
            },
        )
        .unwrap();
        let _: Reply = read_message(&mut reader1).unwrap().unwrap();
    }

    // Connection 2: the same worker id re-Hellos (as after a reconnect),
    // quoting the session nonce it learned. The coordinator must hand back
    // the stranded leases right away and never re-offer the delivered two.
    let stream2 = TcpStream::connect(&addr).unwrap();
    let mut reader2 = std::io::BufReader::new(stream2.try_clone().unwrap());
    let mut writer2 = stream2;
    write_message(
        &mut writer2,
        &Request::Hello {
            worker: "phoenix".into(),
            session: Some(nonce1.clone()),
        },
    )
    .unwrap();
    match read_message::<Reply>(&mut reader2).unwrap().unwrap() {
        Reply::Welcome {
            session,
            fingerprint,
            ..
        } => {
            assert_eq!(session, nonce1, "same coordinator process, same nonce");
            assert_eq!(fingerprint, fingerprint1, "same campaign grid");
        }
        other => panic!("expected Welcome, got {other:?}"),
    }
    let ran = drain_via_client(&mut reader2, &mut writer2, 24);
    assert_eq!(ran.len(), 22, "everything except the two already delivered");
    for label in &delivered_labels {
        assert!(
            !ran.contains(label),
            "job `{label}` was double-run after the re-Hello reclaim"
        );
    }

    let outcome = server.join().unwrap().unwrap();
    drop(stream1);
    assert!(outcome.is_complete());
    assert_eq!(outcome.workers, 1, "one worker id across two connections");
    assert_eq!(outcome.reconnects, 1, "the re-Hello counted as a reconnect");
    assert_eq!(
        outcome.reoffered,
        batch.len() - 2,
        "exactly the stranded leases were reclaimed"
    );
    assert_eq!(
        std::fs::read(&path).unwrap(),
        local_store_bytes(&s, "dist-rehello-local"),
        "reclaim + dedup must not perturb the final bytes"
    );
    clean(&path);
}

/// A malformed frame is a protocol violation, not a silent disconnect: the
/// coordinator names the offending line in a `ProtocolError`, closes the
/// connection, and re-offers the connection's leases.
#[test]
fn garbage_frames_get_a_protocol_error_naming_the_line() {
    use std::io::{BufRead, Write};

    let s = spec("dist-garbage");
    let path = temp_store("dist-garbage");
    clean(&path);
    let jobs = s.expand().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let (name, jobs, path) = (s.name.clone(), jobs.clone(), path.clone());
        std::thread::spawn(move || serve(listener, &name, &jobs, &path, &quiet_opts()))
    };

    // Garbage as the very first frame: ProtocolError, then EOF.
    {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"HELO I AM NOT JSON\n").unwrap();
        writer.flush().unwrap();
        match read_message::<Reply>(&mut reader).unwrap().unwrap() {
            Reply::ProtocolError { message } => {
                assert!(message.contains("malformed frame"), "{message}");
                assert!(message.contains("HELO I AM NOT JSON"), "{message}");
            }
            other => panic!("expected ProtocolError, got {other:?}"),
        }
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "connection closed");
    }

    // Garbage mid-conversation, with leases held: same error, and the
    // leases re-offer so a healthy worker can still finish everything.
    let taken = {
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_message(
            &mut writer,
            &Request::Hello {
                worker: "babbler".into(),
                session: None,
            },
        )
        .unwrap();
        let _: Reply = read_message(&mut reader).unwrap().unwrap();
        write_message(&mut writer, &Request::Fetch { max: 5 }).unwrap();
        let taken = match read_message::<Reply>(&mut reader).unwrap().unwrap() {
            Reply::Assign { jobs } => jobs.len(),
            other => panic!("expected an assignment, got {other:?}"),
        };
        writer.write_all(b"{\"Fetch\":{\"max\":}}\n").unwrap();
        writer.flush().unwrap();
        match read_message::<Reply>(&mut reader).unwrap().unwrap() {
            Reply::ProtocolError { message } => {
                assert!(message.contains("malformed frame"), "{message}");
                assert!(message.contains("{\"Fetch\":{\"max\":}}"), "{message}");
            }
            other => panic!("expected ProtocolError, got {other:?}"),
        }
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "connection closed");
        taken
    };
    assert!(taken > 0);

    let finisher = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            run_worker(&addr, "finisher", &WorkerOptions::default(), fake_result)
        })
    };
    let outcome = server.join().unwrap().unwrap();
    finisher.join().unwrap().unwrap();
    assert!(outcome.is_complete());
    assert!(outcome.reoffered >= taken, "{outcome:?}");
    assert_eq!(
        std::fs::read(&path).unwrap(),
        local_store_bytes(&s, "dist-garbage-local"),
        "a babbling client must not perturb the final bytes"
    );
    clean(&path);
}
