//! Property-based tests of the routing algorithms and the SurePath mechanism.

use hyperx_routing::dal::DalRouting;
use hyperx_routing::minimal::MinimalRouting;
use hyperx_routing::omnidimensional::OmnidimensionalRouting;
use hyperx_routing::polarized::PolarizedRouting;
use hyperx_routing::{Candidate, CandidateKind, MechanismSpec, NetworkView, RouteAlgorithm};
use hyperx_topology::{FaultSet, HyperX};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn sides_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..=5, 2..=3).prop_filter("keep networks small", |sides| {
        sides.iter().product::<usize>() <= 80
    })
}

/// A connected, possibly faulty view over a random HyperX.
fn faulty_view(sides: &[usize], faults: usize, seed: u64) -> Arc<NetworkView> {
    let hx = HyperX::new(sides);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let fault_set = FaultSet::random_connected_sequence(hx.network(), faults, &mut rng);
    Arc::new(NetworkView::with_faults(hx, &fault_set, 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn minimal_candidates_always_reduce_distance(
        sides in sides_strategy(),
        faults in 0usize..15,
        seed in 0u64..500,
    ) {
        let view = faulty_view(&sides, faults, seed);
        let algo = MinimalRouting::new(view.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for src in 0..view.hyperx().num_switches() {
            for dst in 0..view.hyperx().num_switches() {
                if src == dst { continue; }
                let st = algo.init(src, dst, &mut rng);
                let mut out = Vec::new();
                algo.candidates(&st, src, &mut out);
                prop_assert!(!out.is_empty());
                for c in &out {
                    let nb = view.network().neighbor(src, c.port).unwrap().switch;
                    prop_assert!(view.distance(nb, dst) < view.distance(src, dst));
                }
            }
        }
    }

    #[test]
    fn omnidimensional_never_moves_in_aligned_dimensions(
        sides in sides_strategy(),
        seed in 0u64..500,
    ) {
        let view = Arc::new(NetworkView::healthy(HyperX::new(&sides), 0));
        let algo = OmnidimensionalRouting::new(view.clone());
        let hx = view.hyperx();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = hx.num_switches();
        let src = (seed as usize * 7) % n;
        for dst in 0..n {
            if src == dst { continue; }
            let st = algo.init(src, dst, &mut rng);
            let mut out = Vec::new();
            algo.candidates(&st, src, &mut out);
            let src_c = hx.switch_coords(src);
            let dst_c = hx.switch_coords(dst);
            for c in &out {
                let dim = hx.port_meaning(src, c.port).dim;
                prop_assert!(src_c[dim] != dst_c[dim], "moved in an aligned dimension");
            }
            // Exactly one minimal candidate per unaligned dimension in a healthy network.
            let unaligned = (0..hx.dims()).filter(|&d| src_c[d] != dst_c[d]).count();
            prop_assert_eq!(out.iter().filter(|c| !c.deroute).count(), unaligned);
        }
    }

    #[test]
    fn polarized_candidates_never_decrease_mu(
        sides in sides_strategy(),
        faults in 0usize..10,
        seed in 0u64..500,
    ) {
        let view = faulty_view(&sides, faults, seed);
        let algo = PolarizedRouting::new(view.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = view.hyperx().num_switches();
        let src = (seed as usize * 3) % n;
        let dst = (seed as usize * 11 + 1) % n;
        prop_assume!(src != dst);
        let st = algo.init(src, dst, &mut rng);
        // Check at the source and at every neighbour of the source (as a proxy
        // for "any reachable state with zero hops").
        let mut positions = vec![src];
        positions.extend(view.network().neighbors(src).map(|(_, nb)| nb.switch));
        for current in positions {
            if current == dst { continue; }
            let mu = |c: usize| view.distance(c, src) as i32 - view.distance(c, dst) as i32;
            let mut out = Vec::new();
            algo.candidates(&st, current, &mut out);
            for c in &out {
                let nb = view.network().neighbor(current, c.port).unwrap().switch;
                prop_assert!(mu(nb) >= mu(current));
            }
        }
    }

    #[test]
    fn surepath_walks_always_terminate_under_faults(
        sides in sides_strategy(),
        faults in 0usize..20,
        seed in 0u64..500,
    ) {
        let view = faulty_view(&sides, faults, seed);
        prop_assert!(view.is_connected());
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
        let n = view.hyperx().num_switches();
        for spec in MechanismSpec::surepath_lineup() {
            let mech = spec.build(view.clone(), 4);
            // A handful of random pairs per case keeps runtime sensible.
            for k in 0..8usize {
                let src = (seed as usize + k * 13) % n;
                let dst = (seed as usize * 7 + k * 29 + 1) % n;
                if src == dst { continue; }
                let mut state = mech.init_packet(src, dst, &mut rng);
                let mut current = src;
                let mut hops = 0usize;
                while current != dst {
                    let mut cands: Vec<Candidate> = Vec::new();
                    mech.candidates(&state, current, &mut cands);
                    prop_assert!(!cands.is_empty(), "{} stuck at {} -> {}", spec, current, dst);
                    let best = cands
                        .iter()
                        .min_by_key(|c| {
                            let nb = view.network().neighbor(current, c.port).unwrap().switch;
                            (c.penalty, view.distance(nb, dst), c.port)
                        })
                        .unwrap();
                    let next = view.network().neighbor(current, best.port).unwrap().switch;
                    mech.note_hop(&mut state, current, next, best);
                    current = next;
                    hops += 1;
                    prop_assert!(hops <= 4 * n, "walk did not terminate");
                }
            }
        }
    }

    #[test]
    fn mechanism_candidates_respect_vc_budget_and_ports(
        sides in sides_strategy(),
        seed in 0u64..500,
    ) {
        let view = Arc::new(NetworkView::healthy(HyperX::new(&sides), 0));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = view.hyperx().num_switches();
        let src = (seed as usize) % n;
        let dst = (seed as usize * 5 + 1) % n;
        prop_assume!(src != dst);
        for spec in MechanismSpec::fault_free_lineup() {
            let mech = spec.build_default(view.clone());
            let state = mech.init_packet(src, dst, &mut rng);
            let mut cands = Vec::new();
            mech.candidates(&state, src, &mut cands);
            for c in &cands {
                prop_assert!(c.vcs.lo < c.vcs.hi);
                prop_assert!(c.vcs.hi <= mech.num_vcs());
                // Every offered port must be alive.
                prop_assert!(view.network().neighbor(src, c.port).is_some());
                // Escape candidates only from SurePath mechanisms.
                if c.kind.is_escape() {
                    prop_assert!(spec.is_surepath());
                    prop_assert_eq!(c.vcs.lo, mech.escape_vc().unwrap());
                }
            }
        }
    }

    #[test]
    fn dal_routes_stay_within_two_hops_per_dimension(
        sides in sides_strategy(),
        seed in 0u64..500,
    ) {
        // Healthy-network DAL walks: every route terminates, never exceeds 2n
        // hops, and never moves in a dimension that is already aligned and was
        // never derouted in.
        let view = Arc::new(NetworkView::healthy(HyperX::new(&sides), 0));
        let algo = DalRouting::new(view.clone());
        let hx = view.hyperx();
        let n = hx.num_switches();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for k in 0..6usize {
            let src = (seed as usize + 3 * k) % n;
            let dst = (seed as usize * 7 + 11 * k + 1) % n;
            if src == dst { continue; }
            let mut st = algo.init(src, dst, &mut rng);
            let mut current = src;
            let mut hops = 0usize;
            while current != dst {
                let mut out = Vec::new();
                algo.candidates(&st, current, &mut out);
                prop_assert!(!out.is_empty(), "DAL stuck at {} -> {}", current, dst);
                // Pick pseudo-randomly among candidates to exercise deroutes too.
                let pick = &out[(seed as usize + hops) % out.len()];
                let next = view.network().neighbor(current, pick.port).unwrap().switch;
                algo.update(&mut st, current, next);
                current = next;
                hops += 1;
                prop_assert!(hops <= algo.max_route_hops(), "DAL route exceeded 2n hops");
            }
        }
    }

    #[test]
    fn tree_escape_candidates_are_a_subset_of_opportunistic_ones(
        sides in sides_strategy(),
        faults in 0usize..15,
        seed in 0u64..500,
    ) {
        let view = faulty_view(&sides, faults, seed);
        let n = view.hyperx().num_switches();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let full = MechanismSpec::PolSP.build(view.clone(), 4);
        let tree = MechanismSpec::PolSPTree.build(view.clone(), 4);
        let src = (seed as usize * 19) % n;
        let dst = (seed as usize * 29 + 1) % n;
        prop_assume!(src != dst);
        let mut state = full.init_packet(src, dst, &mut rng);
        state.in_escape = true;
        let mut full_cands = Vec::new();
        full.candidates(&state, src, &mut full_cands);
        let mut tree_cands = Vec::new();
        tree.candidates(&state, src, &mut tree_cands);
        prop_assert!(!tree_cands.is_empty(), "tree escape must always offer a hop");
        for c in &tree_cands {
            prop_assert!(c.kind != CandidateKind::EscapeShortcut);
            prop_assert!(full_cands.contains(c));
        }
        prop_assert_eq!(
            full_cands.iter().filter(|c| c.kind != CandidateKind::EscapeShortcut).count(),
            tree_cands.len()
        );
    }

    #[test]
    fn escape_candidates_advertise_exact_reduction(
        sides in sides_strategy(),
        faults in 0usize..15,
        seed in 0u64..500,
    ) {
        let view = faulty_view(&sides, faults, seed);
        let escape = view.escape_required();
        let n = view.hyperx().num_switches();
        let mech = MechanismSpec::PolSP.build(view.clone(), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let src = (seed as usize * 17) % n;
        let dst = (seed as usize * 23 + 1) % n;
        prop_assume!(src != dst);
        let mut state = mech.init_packet(src, dst, &mut rng);
        state.in_escape = true;
        let mut cands = Vec::new();
        mech.candidates(&state, src, &mut cands);
        prop_assert!(!cands.is_empty());
        for c in &cands {
            prop_assert!(c.kind.is_escape());
            let nb = view.network().neighbor(src, c.port).unwrap().switch;
            prop_assert!(escape.updown_distance(nb, dst) < escape.updown_distance(src, dst));
        }
    }
}
