//! Dimension-Ordered Routing (DOR).
//!
//! DOR corrects unaligned dimensions in a fixed order, producing a unique
//! deterministic path per source/destination pair. The paper uses it only as
//! a motivating example of fragility: "DOR routing would leave switches
//! disconnected when just a single link is removed". The implementation keeps
//! that behaviour — when the required link is dead, there simply is no candidate.

use crate::candidate::{PacketState, RouteCandidate};
use crate::penalties::SHORTEST_PATH;
use crate::view::NetworkView;
use crate::RouteAlgorithm;
use rand::RngCore;
use std::sync::Arc;

/// Deterministic dimension-ordered routing on HyperX.
#[derive(Clone, Debug)]
pub struct DimensionOrderedRouting {
    view: Arc<NetworkView>,
}

impl DimensionOrderedRouting {
    /// Builds DOR over the given network view.
    pub fn new(view: Arc<NetworkView>) -> Self {
        DimensionOrderedRouting { view }
    }
}

impl RouteAlgorithm for DimensionOrderedRouting {
    fn name(&self) -> &'static str {
        "DOR"
    }

    fn init(&self, source: usize, dest: usize, _rng: &mut dyn RngCore) -> PacketState {
        PacketState::new(source, dest)
    }

    fn candidates(&self, state: &PacketState, current: usize, out: &mut Vec<RouteCandidate>) {
        if current == state.dest {
            return;
        }
        let hx = self.view.hyperx();
        let cur = hx.switch_coords(current);
        let dst = hx.switch_coords(state.dest);
        // Correct the lowest unaligned dimension; the single valid port is the
        // aligned one, offered only if its link is alive.
        for d in 0..hx.dims() {
            if cur[d] != dst[d] {
                let port = hx.port_for(current, d, dst[d]);
                if self.view.network().neighbor(current, port).is_some() {
                    out.push(RouteCandidate {
                        port,
                        penalty: SHORTEST_PATH,
                        deroute: false,
                    });
                }
                return;
            }
        }
    }

    fn update(&self, state: &mut PacketState, _current: usize, _next: usize) {
        state.hops += 1;
        state.minimal_hops += 1;
    }

    fn max_route_hops(&self) -> usize {
        self.view.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::HyperX;
    use rand::rngs::mock::StepRng;

    fn view() -> Arc<NetworkView> {
        Arc::new(NetworkView::healthy(HyperX::regular(3, 4), 0))
    }

    #[test]
    fn offers_exactly_one_candidate_fault_free() {
        let v = view();
        let algo = DimensionOrderedRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        for src in 0..v.hyperx().num_switches() {
            for dst in 0..v.hyperx().num_switches() {
                let st = algo.init(src, dst, &mut rng);
                let mut out = Vec::new();
                algo.candidates(&st, src, &mut out);
                if src == dst {
                    assert!(out.is_empty());
                } else {
                    assert_eq!(out.len(), 1, "DOR is deterministic");
                }
            }
        }
    }

    #[test]
    fn corrects_dimensions_in_order() {
        let v = view();
        let hx = v.hyperx();
        let algo = DimensionOrderedRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0, 0]);
        let dst = hx.switch_id(&[1, 2, 3]);
        let mut st = algo.init(src, dst, &mut rng);
        let mut current = src;
        let mut visited_dims = Vec::new();
        while current != dst {
            let mut out = Vec::new();
            algo.candidates(&st, current, &mut out);
            let port = out[0].port;
            let meaning = hx.port_meaning(current, port);
            visited_dims.push(meaning.dim);
            current = v.network().neighbor(current, port).unwrap().switch;
            algo.update(&mut st, current, current);
        }
        assert_eq!(visited_dims, vec![0, 1, 2]);
    }

    #[test]
    fn single_fault_breaks_a_pair() {
        // The paper's motivation: a single link failure leaves DOR unable to
        // deliver the packets whose unique path used that link.
        let hx = HyperX::regular(2, 4);
        let a = hx.switch_id(&[0, 0]);
        let b = hx.switch_id(&[1, 0]);
        let faults =
            hyperx_topology::FaultSet::from_links(vec![hyperx_topology::LinkId::new(a, b)]);
        let v = Arc::new(NetworkView::with_faults(hx, &faults, 0));
        let algo = DimensionOrderedRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let st = algo.init(a, b, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, a, &mut out);
        assert!(
            out.is_empty(),
            "DOR has no alternative when its unique link dies"
        );
        // While the network itself is still connected.
        assert!(v.is_connected());
    }

    #[test]
    fn max_hops_is_dimension_count() {
        let v = view();
        let algo = DimensionOrderedRouting::new(v);
        assert_eq!(algo.max_route_hops(), 3);
    }
}
