//! Omnidimensional routing (the route set behind DAL and OmniWAR).
//!
//! At every hop a packet may only move along dimensions in which it is not
//! yet aligned with its destination. In each such dimension every neighbour
//! is a candidate: the aligned one is the *minimal* hop (penalty 0) and the
//! remaining ones are *deroutes* (penalty 64), limited globally to `m`
//! non-minimal hops per packet. The paper always uses `m = n` (the deroute
//! budget equals the number of dimensions, shared globally across dimensions).
//!
//! Note the deliberate restriction the paper leans on for the Regular
//! Permutation to Neighbour analysis: if source and destination share a row,
//! Omnidimensional never leaves that row, which caps its throughput at 0.5
//! under that pattern.

use crate::candidate::{PacketState, RouteCandidate};
use crate::penalties::{OMNI_DEROUTE, OMNI_MINIMAL};
use crate::view::NetworkView;
use crate::RouteAlgorithm;
use rand::RngCore;
use std::sync::Arc;

/// Omnidimensional adaptive routing with a global deroute budget.
#[derive(Clone, Debug)]
pub struct OmnidimensionalRouting {
    view: Arc<NetworkView>,
    /// Maximum number of non-minimal hops per packet (`m` in the paper).
    deroute_limit: u16,
}

impl OmnidimensionalRouting {
    /// Builds Omnidimensional routing with the paper's default deroute budget `m = n`.
    pub fn new(view: Arc<NetworkView>) -> Self {
        let m = view.dims() as u16;
        Self::with_deroute_limit(view, m)
    }

    /// Builds Omnidimensional routing with an explicit deroute budget.
    pub fn with_deroute_limit(view: Arc<NetworkView>, deroute_limit: u16) -> Self {
        OmnidimensionalRouting {
            view,
            deroute_limit,
        }
    }

    /// The deroute budget `m`.
    pub fn deroute_limit(&self) -> u16 {
        self.deroute_limit
    }
}

impl RouteAlgorithm for OmnidimensionalRouting {
    fn name(&self) -> &'static str {
        "Omnidimensional"
    }

    fn init(&self, source: usize, dest: usize, _rng: &mut dyn RngCore) -> PacketState {
        PacketState::new(source, dest)
    }

    fn candidates(&self, state: &PacketState, current: usize, out: &mut Vec<RouteCandidate>) {
        if current == state.dest {
            return;
        }
        let hx = self.view.hyperx();
        let net = self.view.network();
        let cur = hx.switch_coords(current);
        let dst = hx.switch_coords(state.dest);
        let deroutes_left = state.deroutes < self.deroute_limit;
        for d in 0..hx.dims() {
            if cur[d] == dst[d] {
                continue;
            }
            for port in hx.dimension_ports(d) {
                if net.neighbor(current, port).is_none() {
                    continue;
                }
                let meaning = hx.port_meaning(current, port);
                let minimal = meaning.value == dst[d];
                if minimal {
                    out.push(RouteCandidate {
                        port,
                        penalty: OMNI_MINIMAL,
                        deroute: false,
                    });
                } else if deroutes_left {
                    out.push(RouteCandidate {
                        port,
                        penalty: OMNI_DEROUTE,
                        deroute: true,
                    });
                }
            }
        }
    }

    fn update(&self, state: &mut PacketState, current: usize, next: usize) {
        state.hops += 1;
        let cs = self.view.hyperx().coords();
        // A hop is minimal iff it reduced the Hamming distance to the destination.
        if cs.hamming_distance(next, state.dest) < cs.hamming_distance(current, state.dest) {
            state.minimal_hops += 1;
        } else {
            state.deroutes += 1;
        }
    }

    fn max_route_hops(&self) -> usize {
        self.view.dims() + self.deroute_limit as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::{FaultSet, HyperX, LinkId};
    use rand::rngs::mock::StepRng;

    fn view(dims: usize, side: usize) -> Arc<NetworkView> {
        Arc::new(NetworkView::healthy(HyperX::regular(dims, side), 0))
    }

    #[test]
    fn candidates_only_in_unaligned_dimensions() {
        let v = view(3, 4);
        let hx = v.hyperx();
        let algo = OmnidimensionalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0, 0]);
        let dst = hx.switch_id(&[2, 0, 3]);
        let st = algo.init(src, dst, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        // Two unaligned dimensions, each with (side − 1) = 3 candidates.
        assert_eq!(out.len(), 6);
        for c in &out {
            let dim = hx.port_meaning(src, c.port).dim;
            assert!(dim == 0 || dim == 2, "never moves in an aligned dimension");
        }
        // Exactly one minimal candidate per unaligned dimension.
        assert_eq!(out.iter().filter(|c| !c.deroute).count(), 2);
        assert!(out.iter().filter(|c| !c.deroute).all(|c| c.penalty == 0));
        assert!(out.iter().filter(|c| c.deroute).all(|c| c.penalty == 64));
    }

    #[test]
    fn same_row_pairs_never_leave_the_row() {
        // Source and destination share every coordinate except dimension 1:
        // every candidate must stay in dimension 1.
        let v = view(3, 8);
        let hx = v.hyperx();
        let algo = OmnidimensionalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[3, 1, 5]);
        let dst = hx.switch_id(&[3, 6, 5]);
        let st = algo.init(src, dst, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        assert_eq!(out.len(), 7);
        assert!(out.iter().all(|c| hx.port_meaning(src, c.port).dim == 1));
    }

    #[test]
    fn deroute_budget_is_enforced() {
        let v = view(2, 4);
        let algo = OmnidimensionalRouting::new(v.clone());
        let hx = v.hyperx();
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0]);
        let dst = hx.switch_id(&[1, 1]);
        let mut st = algo.init(src, dst, &mut rng);
        st.deroutes = algo.deroute_limit();
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        assert!(!out.is_empty());
        assert!(
            out.iter().all(|c| !c.deroute),
            "budget exhausted: only minimal hops remain"
        );
    }

    #[test]
    fn update_counts_minimal_and_deroute_hops() {
        let v = view(2, 4);
        let hx = v.hyperx();
        let algo = OmnidimensionalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0]);
        let dst = hx.switch_id(&[3, 3]);
        let mut st = algo.init(src, dst, &mut rng);
        // A deroute in dimension 0 (to value 1, not the destination's 3).
        let deroute_next = hx.switch_id(&[1, 0]);
        algo.update(&mut st, src, deroute_next);
        assert_eq!(st.deroutes, 1);
        assert_eq!(st.minimal_hops, 0);
        // A minimal hop aligning dimension 0.
        let minimal_next = hx.switch_id(&[3, 0]);
        algo.update(&mut st, deroute_next, minimal_next);
        assert_eq!(st.deroutes, 1);
        assert_eq!(st.minimal_hops, 1);
        assert_eq!(st.hops, 2);
    }

    #[test]
    fn faulty_minimal_link_with_exhausted_budget_gives_no_candidates() {
        // The motivation of the paper (§2): with the deroute budget consumed
        // and the aligned link dead, Omnidimensional has nothing to offer and
        // must rely on an escape subnetwork.
        let hx = HyperX::regular(2, 4);
        let src = hx.switch_id(&[0, 0]);
        let dst = hx.switch_id(&[1, 0]);
        let faults = FaultSet::from_links(vec![LinkId::new(src, dst)]);
        let v = Arc::new(NetworkView::with_faults(hx, &faults, 0));
        let algo = OmnidimensionalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let mut st = algo.init(src, dst, &mut rng);
        st.deroutes = algo.deroute_limit();
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn max_hops_is_dims_plus_budget() {
        let v = view(3, 4);
        let algo = OmnidimensionalRouting::new(v.clone());
        assert_eq!(algo.max_route_hops(), 6);
        let tight = OmnidimensionalRouting::with_deroute_limit(v, 1);
        assert_eq!(tight.max_route_hops(), 4);
    }

    #[test]
    fn candidates_empty_at_destination() {
        let v = view(2, 4);
        let algo = OmnidimensionalRouting::new(v);
        let mut rng = StepRng::new(0, 1);
        let st = algo.init(5, 5, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, 5, &mut out);
        assert!(out.is_empty());
    }
}
