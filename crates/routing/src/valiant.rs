//! Valiant load-balanced routing.
//!
//! Every packet first takes a shortest path to a uniformly random
//! *intermediate* switch and then a shortest path to its destination. This
//! turns any admissible traffic pattern into (roughly) uniform traffic at the
//! cost of doubling the average path length, which caps throughput around 0.5
//! on benign patterns — exactly the behaviour Figures 4 and 5 of the paper show.

use crate::candidate::{PacketState, RouteCandidate};
use crate::minimal::MinimalRouting;
use crate::penalties::SHORTEST_PATH;
use crate::view::NetworkView;
use crate::RouteAlgorithm;
use rand::RngCore;
use std::sync::Arc;

/// Two-phase Valiant routing with a uniformly random intermediate switch.
#[derive(Clone, Debug)]
pub struct ValiantRouting {
    view: Arc<NetworkView>,
}

impl ValiantRouting {
    /// Builds Valiant routing over the given network view.
    pub fn new(view: Arc<NetworkView>) -> Self {
        ValiantRouting { view }
    }
}

impl RouteAlgorithm for ValiantRouting {
    fn name(&self) -> &'static str {
        "Valiant"
    }

    fn init(&self, source: usize, dest: usize, rng: &mut dyn RngCore) -> PacketState {
        let n = self.view.hyperx().num_switches();
        let intermediate = (rng.next_u64() % n as u64) as usize;
        let mut st = PacketState::new(source, dest);
        st.intermediate = intermediate;
        // Degenerate intermediates (the source or the destination itself) skip
        // straight to phase 2.
        st.phase2 = intermediate == source || intermediate == dest;
        st
    }

    fn candidates(&self, state: &PacketState, current: usize, out: &mut Vec<RouteCandidate>) {
        let target = state.current_target();
        if current == target {
            // Phase-1 target reached but `update` not yet applied (can only
            // happen if the caller queries twice); nothing to offer towards it.
            if current == state.dest {
                return;
            }
            MinimalRouting::minimal_ports(&self.view, current, state.dest, SHORTEST_PATH, out);
            return;
        }
        MinimalRouting::minimal_ports(&self.view, current, target, SHORTEST_PATH, out);
    }

    fn update(&self, state: &mut PacketState, _current: usize, next: usize) {
        state.hops += 1;
        state.minimal_hops += 1;
        if !state.phase2 && next == state.intermediate {
            state.phase2 = true;
        }
    }

    fn max_route_hops(&self) -> usize {
        2 * self.view.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::HyperX;
    use rand::rngs::mock::StepRng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn view() -> Arc<NetworkView> {
        Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 0))
    }

    #[test]
    fn phase1_targets_intermediate_then_destination() {
        let v = view();
        let algo = ValiantRouting::new(v.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let src = 0;
        let dst = 15;
        // Find a packet whose intermediate is distinct from both endpoints.
        let st = loop {
            let st = algo.init(src, dst, &mut rng);
            if st.intermediate != src && st.intermediate != dst {
                break st;
            }
        };
        assert!(!st.phase2);
        assert_eq!(st.current_target(), st.intermediate);
    }

    #[test]
    fn degenerate_intermediate_goes_straight_to_phase2() {
        let v = view();
        let algo = ValiantRouting::new(v);
        // StepRng with increment 0 always returns the same value, i.e. intermediate 0 = source.
        let mut rng = StepRng::new(0, 0);
        let st = algo.init(0, 9, &mut rng);
        assert!(st.phase2);
        assert_eq!(st.current_target(), 9);
    }

    #[test]
    fn full_walk_visits_intermediate_and_reaches_destination() {
        let v = view();
        let algo = ValiantRouting::new(v.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for dst in 1..v.hyperx().num_switches() {
            let mut st = algo.init(0, dst, &mut rng);
            let intermediate = st.intermediate;
            let mut current = 0usize;
            let mut visited_intermediate = current == intermediate;
            let mut hops = 0;
            while current != dst {
                let mut out = Vec::new();
                algo.candidates(&st, current, &mut out);
                assert!(!out.is_empty(), "valiant must always progress");
                let next = v.network().neighbor(current, out[0].port).unwrap().switch;
                algo.update(&mut st, current, next);
                current = next;
                if current == intermediate {
                    visited_intermediate = true;
                }
                hops += 1;
                assert!(hops <= algo.max_route_hops());
            }
            if intermediate != dst {
                assert!(
                    visited_intermediate || intermediate == 0,
                    "route to {dst} skipped its intermediate {intermediate}"
                );
            }
        }
    }

    #[test]
    fn candidates_empty_at_destination() {
        let v = view();
        let algo = ValiantRouting::new(v);
        let mut rng = StepRng::new(3, 0);
        let st = algo.init(3, 3, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, 3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn max_route_hops_is_twice_diameter() {
        let v = view();
        let algo = ValiantRouting::new(v);
        assert_eq!(algo.max_route_hops(), 4);
    }
}
