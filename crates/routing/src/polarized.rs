//! Polarized routing (Camarero, Martínez, Beivide — HOTI 2021 / IEEE Micro 2022).
//!
//! Polarized routes are built hop by hop so that the weight function
//! `µ_{s,t}(c) = d(c, s) − d(c, t)` never decreases. At each switch the
//! candidates are the neighbours with `Δµ ≥ 0`; candidates with `Δµ = 0` are
//! additionally filtered by whether the packet is still closer to its source
//! than to its destination (the paper's header bit), which breaks potential
//! cycles. Priorities follow Δµ: 2 → no penalty, 1 → 64 phits, 0 → 80 phits.
//!
//! Because the routes are computed from BFS distance tables, Polarized keeps
//! working after failures (the tables are simply recomputed), which is one of
//! the reasons the paper pairs it with SurePath.

use crate::candidate::{PacketState, RouteCandidate};
use crate::penalties::polarized_penalty;
use crate::view::NetworkView;
use crate::RouteAlgorithm;
use rand::RngCore;
use std::sync::Arc;

/// Polarized adaptive routing over BFS distance tables.
#[derive(Clone, Debug)]
pub struct PolarizedRouting {
    view: Arc<NetworkView>,
    /// Hop count after which Δµ = 0 candidates stop being offered. This keeps
    /// worst-case route lengths bounded (the Polarized papers bound them by
    /// twice the diameter in HyperX); the escape subnetwork or the Ladder
    /// covers the residual cases.
    zero_gain_hop_limit: u16,
}

impl PolarizedRouting {
    /// Builds Polarized routing with the default zero-gain hop limit of
    /// `2 · diameter` hops.
    pub fn new(view: Arc<NetworkView>) -> Self {
        let diameter = if view.is_connected() {
            view.diameter()
        } else {
            view.dims()
        };
        let limit = (2 * diameter) as u16;
        Self::with_zero_gain_limit(view, limit)
    }

    /// Builds Polarized routing with an explicit zero-gain hop limit.
    pub fn with_zero_gain_limit(view: Arc<NetworkView>, zero_gain_hop_limit: u16) -> Self {
        PolarizedRouting {
            view,
            zero_gain_hop_limit,
        }
    }
}

impl RouteAlgorithm for PolarizedRouting {
    fn name(&self) -> &'static str {
        "Polarized"
    }

    fn init(&self, source: usize, dest: usize, _rng: &mut dyn RngCore) -> PacketState {
        let mut st = PacketState::new(source, dest);
        // At the source, d(c,s) = 0 ≤ d(c,t); the packet starts "closer to source".
        st.closer_to_source = source != dest;
        st
    }

    fn candidates(&self, state: &PacketState, current: usize, out: &mut Vec<RouteCandidate>) {
        if current == state.dest {
            return;
        }
        let net = self.view.network();
        let d = self.view.distances();
        let ds_c = d.get(current, state.source) as i32;
        let dt_c = d.get(current, state.dest) as i32;
        let allow_zero_gain = state.hops < self.zero_gain_hop_limit;
        for (port, nb) in net.neighbors(current) {
            let ds_n = d.get(nb.switch, state.source) as i32;
            let dt_n = d.get(nb.switch, state.dest) as i32;
            let delta_s = ds_n - ds_c;
            let delta_t = dt_n - dt_c;
            let delta_mu = delta_s - delta_t;
            if delta_mu < 0 {
                continue;
            }
            if delta_mu == 0 {
                if !allow_zero_gain {
                    continue;
                }
                // Table 1 allows only (+1,+1) and (−1,−1) among the Δµ = 0
                // moves; the header bit decides which of the two is legal to
                // avoid cycles: while closer to the source only departing
                // moves are allowed, afterwards only approaching moves.
                let departs_both = delta_s == 1 && delta_t == 1;
                let approaches_both = delta_s == -1 && delta_t == -1;
                if !(departs_both || approaches_both) {
                    continue;
                }
                if state.closer_to_source && !departs_both {
                    continue;
                }
                if !state.closer_to_source && !approaches_both {
                    continue;
                }
            }
            out.push(RouteCandidate {
                port,
                penalty: polarized_penalty(delta_mu as i8),
                deroute: dt_n >= dt_c,
            });
        }
    }

    fn update(&self, state: &mut PacketState, current: usize, next: usize) {
        state.hops += 1;
        let d = self.view.distances();
        if d.get(next, state.dest) < d.get(current, state.dest) {
            state.minimal_hops += 1;
        } else {
            state.deroutes += 1;
        }
        state.closer_to_source = d.get(next, state.source) < d.get(next, state.dest);
    }

    fn max_route_hops(&self) -> usize {
        if self.view.is_connected() {
            2 * self.view.diameter()
        } else {
            2 * self.view.dims()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::{FaultSet, HyperX};
    use rand::rngs::mock::StepRng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn view(dims: usize, side: usize) -> Arc<NetworkView> {
        Arc::new(NetworkView::healthy(HyperX::regular(dims, side), 0))
    }

    fn mu(view: &NetworkView, s: usize, t: usize, c: usize) -> i32 {
        view.distance(c, s) as i32 - view.distance(c, t) as i32
    }

    #[test]
    fn candidates_never_decrease_mu() {
        let v = view(2, 4);
        let algo = PolarizedRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        for src in 0..v.hyperx().num_switches() {
            for dst in 0..v.hyperx().num_switches() {
                if src == dst {
                    continue;
                }
                let st = algo.init(src, dst, &mut rng);
                let mut out = Vec::new();
                algo.candidates(&st, src, &mut out);
                assert!(!out.is_empty(), "polarized offers something at the source");
                for c in &out {
                    let nb = v.network().neighbor(src, c.port).unwrap().switch;
                    assert!(mu(&v, src, dst, nb) >= mu(&v, src, dst, src));
                }
            }
        }
    }

    #[test]
    fn direct_neighbor_gets_best_priority() {
        // One hop from the destination, the direct hop has Δµ = 2 (departs the
        // source, approaches the target) when source and destination are distinct rows.
        let v = view(2, 4);
        let hx = v.hyperx();
        let algo = PolarizedRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0]);
        let dst = hx.switch_id(&[1, 0]);
        let st = algo.init(src, dst, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        let direct_port = v.network().port_towards(src, dst).unwrap();
        let direct = out.iter().find(|c| c.port == direct_port).unwrap();
        assert_eq!(direct.penalty, 0);
    }

    #[test]
    fn includes_non_minimal_candidates() {
        // Polarized is the route set that can leave the source/destination row,
        // which is what lets it beat Omnidimensional under Regular Permutation
        // to Neighbour (paper §5).
        let v = view(3, 4);
        let hx = v.hyperx();
        let algo = PolarizedRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0, 0]);
        let dst = hx.switch_id(&[1, 0, 0]);
        let st = algo.init(src, dst, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        let out_of_row = out.iter().any(|c| {
            let dim = hx.port_meaning(src, c.port).dim;
            dim != 0
        });
        assert!(
            out_of_row,
            "polarized must offer hops outside the shared row"
        );
    }

    #[test]
    fn routes_terminate_within_twice_diameter_following_best_candidate() {
        let v = view(3, 4);
        let algo = PolarizedRouting::new(v.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for dst in 1..v.hyperx().num_switches() {
            let mut st = algo.init(0, dst, &mut rng);
            let mut current = 0usize;
            let mut hops = 0usize;
            while current != dst {
                let mut out = Vec::new();
                algo.candidates(&st, current, &mut out);
                assert!(!out.is_empty(), "stuck at {current} heading to {dst}");
                // Follow the best (lowest penalty) candidate; break ties the way
                // an uncongested allocator would not care about, preferring
                // progress towards the destination.
                let best = out
                    .iter()
                    .min_by_key(|c| {
                        let nb = v.network().neighbor(current, c.port).unwrap().switch;
                        (c.penalty, v.distance(nb, dst), c.port)
                    })
                    .unwrap();
                let next = v.network().neighbor(current, best.port).unwrap().switch;
                algo.update(&mut st, current, next);
                current = next;
                hops += 1;
                assert!(
                    hops <= algo.max_route_hops() + v.diameter(),
                    "route to {dst} is too long"
                );
            }
        }
    }

    #[test]
    fn header_bit_tracks_relative_closeness() {
        let v = view(2, 4);
        let hx = v.hyperx();
        let algo = PolarizedRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0]);
        let dst = hx.switch_id(&[2, 2]);
        let mut st = algo.init(src, dst, &mut rng);
        assert!(st.closer_to_source);
        // Hop to (2,0): distance to source 1, to destination 1 → not closer to source.
        let mid = hx.switch_id(&[2, 0]);
        algo.update(&mut st, src, mid);
        assert!(!st.closer_to_source);
        // Hop to (2,2): at destination.
        algo.update(&mut st, mid, dst);
        assert!(!st.closer_to_source);
        assert_eq!(st.hops, 2);
        assert_eq!(st.minimal_hops, 2);
    }

    #[test]
    fn survives_faults_with_recomputed_tables() {
        let hx = HyperX::regular(2, 4);
        let mut frng = ChaCha8Rng::seed_from_u64(3);
        let faults = FaultSet::random_connected_sequence(hx.network(), 12, &mut frng);
        let v = Arc::new(NetworkView::with_faults(hx, &faults, 0));
        let algo = PolarizedRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        for src in 0..v.hyperx().num_switches() {
            for dst in 0..v.hyperx().num_switches() {
                if src == dst {
                    continue;
                }
                let st = algo.init(src, dst, &mut rng);
                let mut out = Vec::new();
                algo.candidates(&st, src, &mut out);
                assert!(
                    !out.is_empty(),
                    "polarized should offer candidates at the source of a connected network"
                );
            }
        }
    }

    #[test]
    fn zero_gain_limit_restricts_candidates() {
        let v = view(2, 4);
        let hx = v.hyperx();
        let algo = PolarizedRouting::with_zero_gain_limit(v.clone(), 0);
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0]);
        let dst = hx.switch_id(&[1, 0]);
        let st = algo.init(src, dst, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        // With the zero-gain hops disabled only strictly-improving candidates remain.
        for c in &out {
            let nb = v.network().neighbor(src, c.port).unwrap().switch;
            assert!(mu(&v, src, dst, nb) > mu(&v, src, dst, src));
        }
    }
}
