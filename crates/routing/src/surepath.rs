//! The SurePath routing mechanism (the paper's main contribution, §3).
//!
//! SurePath splits the virtual channels of every port into a routing set
//! `CRout` (all but the last VC) and an escape set `CEsc` (the last VC).
//! The transition rules are exactly the paper's:
//!
//! 1. A packet travelling on `CRout` may request any hop offered by the base
//!    routing algorithm, on any routing VC, with the algorithm's penalties.
//! 2. Every packet — on `CRout` **or** `CEsc` — may additionally request any
//!    valid escape hop on the escape VC, with the escape penalties. Packets
//!    that have entered the escape subnetwork never go back to `CRout`.
//!
//! When the routing algorithm has nothing to offer (a *forced hop*: deroutes
//! exhausted in front of a faulty link, a Ladder-less algorithm stuck, ...)
//! the escape candidates are the only ones left, so the packet still makes
//! progress as long as the network is connected. The escape subnetwork's
//! monotonically decreasing Up/Down distance provides deadlock freedom with a
//! single escape VC.

use crate::candidate::{Candidate, CandidateKind, PacketState, VcRange};
use crate::updown_escape::{EscapePolicy, EscapeTables};
use crate::view::NetworkView;
use crate::{RouteAlgorithm, RoutingMechanism};
use rand::RngCore;
use std::sync::Arc;

/// SurePath: a base routing algorithm plus the opportunistic Up/Down escape subnetwork.
pub struct SurePathMechanism {
    algo: Box<dyn RouteAlgorithm>,
    escape: EscapeTables,
    display_name: String,
    num_vcs: usize,
}

impl SurePathMechanism {
    /// Builds SurePath over `algo` with `num_vcs` total VCs (at least 2: one
    /// routing VC and the escape VC).
    ///
    /// # Panics
    /// Panics if `num_vcs < 2` or if the network view is disconnected.
    pub fn new(
        algo: Box<dyn RouteAlgorithm>,
        display_name: impl Into<String>,
        view: Arc<NetworkView>,
        num_vcs: usize,
    ) -> Self {
        Self::with_escape_policy(
            algo,
            display_name,
            view,
            num_vcs,
            EscapePolicy::Opportunistic,
        )
    }

    /// Builds SurePath with an explicit [`EscapePolicy`] — the paper's
    /// opportunistic escape or the pure Up*/Down* tree used as an ablation
    /// baseline.
    ///
    /// # Panics
    /// Panics if `num_vcs < 2` or if the network view is disconnected.
    pub fn with_escape_policy(
        algo: Box<dyn RouteAlgorithm>,
        display_name: impl Into<String>,
        view: Arc<NetworkView>,
        num_vcs: usize,
        policy: EscapePolicy,
    ) -> Self {
        assert!(
            num_vcs >= 2,
            "SurePath needs at least 2 VCs (1 routing + 1 escape)"
        );
        let escape = EscapeTables::with_policy(view, num_vcs - 1, policy);
        SurePathMechanism {
            algo,
            escape,
            display_name: display_name.into(),
            num_vcs,
        }
    }

    /// The VCs available to the base routing algorithm.
    pub fn routing_vcs(&self) -> VcRange {
        VcRange::span(0, self.num_vcs - 1)
    }

    /// The root of the escape subnetwork.
    pub fn escape_root(&self) -> usize {
        self.escape.root()
    }

    /// The escape policy in force.
    pub fn escape_policy(&self) -> EscapePolicy {
        self.escape.policy()
    }
}

impl RoutingMechanism for SurePathMechanism {
    fn name(&self) -> String {
        self.display_name.clone()
    }

    fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    fn escape_vc(&self) -> Option<usize> {
        Some(self.num_vcs - 1)
    }

    fn init_packet(&self, source: usize, dest: usize, rng: &mut dyn RngCore) -> PacketState {
        self.algo.init(source, dest, rng)
    }

    fn candidates_into(
        &self,
        state: &PacketState,
        current: usize,
        scratch: &mut crate::RouteScratch,
        out: &mut Vec<Candidate>,
    ) {
        if !state.in_escape {
            scratch.routes.clear();
            self.algo.candidates(state, current, &mut scratch.routes);
            let vcs = self.routing_vcs();
            out.extend(scratch.routes.iter().map(|r| Candidate {
                port: r.port,
                vcs,
                penalty: r.penalty,
                kind: if r.deroute {
                    CandidateKind::Deroute
                } else {
                    CandidateKind::Minimal
                },
            }));
        }
        // Rule 2: the escape subnetwork is always available (and is the only
        // option once the packet has entered it).
        self.escape.candidates(current, state.dest, out);
    }

    fn note_hop(&self, state: &mut PacketState, current: usize, next: usize, cand: &Candidate) {
        if cand.enters_escape() {
            state.in_escape = true;
            state.hops += 1;
        } else {
            debug_assert!(!state.in_escape, "escape packets cannot re-enter CRout");
            self.algo.update(state, current, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::MechanismSpec;
    use crate::omnidimensional::OmnidimensionalRouting;
    use hyperx_topology::{FaultSet, FaultShape, HyperX, LinkId};
    use rand::rngs::mock::StepRng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn healthy_view() -> Arc<NetworkView> {
        Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 0))
    }

    #[test]
    fn rejects_single_vc() {
        let v = healthy_view();
        let algo = Box::new(OmnidimensionalRouting::new(v.clone()));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SurePathMechanism::new(algo, "OmniSP", v, 1)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn offers_routing_and_escape_candidates() {
        let v = healthy_view();
        let mech = MechanismSpec::OmniSP.build(v.clone(), 4);
        let mut rng = StepRng::new(0, 1);
        let st = mech.init_packet(0, 15, &mut rng);
        let mut out = Vec::new();
        mech.candidates(&st, 0, &mut out);
        assert!(
            out.iter().any(|c| !c.kind.is_escape()),
            "routing candidates expected"
        );
        assert!(
            out.iter().any(|c| c.kind.is_escape()),
            "escape candidates expected"
        );
        // Routing candidates span the routing VCs, escape candidates pin VC 3.
        for c in &out {
            if c.kind.is_escape() {
                assert_eq!(c.vcs, VcRange::exact(3));
            } else {
                assert_eq!(c.vcs, VcRange::span(0, 3));
            }
        }
    }

    #[test]
    fn escape_packets_only_get_escape_candidates() {
        let v = healthy_view();
        let mech = MechanismSpec::PolSP.build(v.clone(), 4);
        let mut rng = StepRng::new(0, 1);
        let mut st = mech.init_packet(0, 15, &mut rng);
        st.in_escape = true;
        let mut out = Vec::new();
        mech.candidates(&st, 5, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| c.kind.is_escape()));
    }

    #[test]
    fn note_hop_marks_escape_entry_permanently() {
        let v = healthy_view();
        let mech = MechanismSpec::OmniSP.build(v.clone(), 4);
        let mut rng = StepRng::new(0, 1);
        let mut st = mech.init_packet(0, 15, &mut rng);
        let mut out = Vec::new();
        mech.candidates(&st, 0, &mut out);
        let esc = out.iter().find(|c| c.kind.is_escape()).unwrap();
        let next = v.network().neighbor(0, esc.port).unwrap().switch;
        mech.note_hop(&mut st, 0, next, esc);
        assert!(st.in_escape);
        assert_eq!(st.hops, 1);
    }

    #[test]
    fn forced_hops_are_covered_by_escape() {
        // Exhaust Omnidimensional's deroutes in front of a dead aligned link:
        // the base algorithm is stuck, but SurePath still offers escape hops.
        let hx = HyperX::regular(2, 4);
        let src = hx.switch_id(&[0, 0]);
        let dst = hx.switch_id(&[1, 0]);
        let faults = FaultSet::from_links(vec![LinkId::new(src, dst)]);
        let v = Arc::new(NetworkView::with_faults(hx, &faults, 5));
        let mech = MechanismSpec::OmniSP.build(v.clone(), 4);
        let mut rng = StepRng::new(0, 1);
        let mut st = mech.init_packet(src, dst, &mut rng);
        st.deroutes = 2; // budget m = n = 2 consumed
        let mut out = Vec::new();
        mech.candidates(&st, src, &mut out);
        assert!(
            !out.is_empty(),
            "forced hop must fall back to the escape subnetwork"
        );
        assert!(out.iter().all(|c| c.kind.is_escape()));
    }

    #[test]
    fn escape_walk_always_reaches_destination_under_faults() {
        // Walk packets purely over the escape subnetwork (worst case) in a
        // heavily faulted network and check they always arrive within the
        // Up/Down distance bound.
        let hx = HyperX::regular(2, 4);
        let root = hx.switch_id(&[1, 1]);
        let shape = FaultShape::Cross {
            center: vec![1, 1],
            margin: 1,
        };
        let faults = FaultSet::from_shape(&shape, &hx);
        let v = Arc::new(NetworkView::with_faults(hx, &faults, root));
        assert!(v.is_connected());
        let mech = MechanismSpec::PolSP.build(v.clone(), 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for src in 0..v.hyperx().num_switches() {
            for dst in 0..v.hyperx().num_switches() {
                if src == dst {
                    continue;
                }
                let mut st = mech.init_packet(src, dst, &mut rng);
                st.in_escape = true;
                let mut current = src;
                let mut hops = 0;
                while current != dst {
                    let mut out = Vec::new();
                    mech.candidates(&st, current, &mut out);
                    assert!(!out.is_empty(), "escape stuck at {current} -> {dst}");
                    let best = out.iter().min_by_key(|c| (c.penalty, c.port)).unwrap();
                    let next = v.network().neighbor(current, best.port).unwrap().switch;
                    mech.note_hop(&mut st, current, next, best);
                    current = next;
                    hops += 1;
                    assert!(
                        hops <= 2 * v.hyperx().num_switches(),
                        "escape walk does not terminate"
                    );
                }
            }
        }
    }

    #[test]
    fn metadata_is_consistent() {
        let v = healthy_view();
        let mech = SurePathMechanism::new(
            Box::new(OmnidimensionalRouting::new(v.clone())),
            "OmniSP",
            v,
            4,
        );
        assert_eq!(mech.name(), "OmniSP");
        assert_eq!(mech.num_vcs(), 4);
        assert_eq!(mech.escape_vc(), Some(3));
        assert_eq!(mech.routing_vcs(), VcRange::span(0, 3));
        assert_eq!(mech.escape_root(), 0);
    }
}
