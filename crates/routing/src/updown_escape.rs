//! Candidate generation for the opportunistic Up/Down escape subnetwork.
//!
//! [`hyperx_topology::UpDownEscape`] knows which hops reduce the Up/Down
//! distance; this module turns those hops into allocator [`Candidate`]s with
//! the penalties of Section 3.2 of the paper: Up links are penalized the most
//! (112 phits) to keep traffic away from the root, Down links slightly less
//! (96 phits), and opportunistic horizontal shortcuts least of all (80, 64 or
//! 48 phits depending on how much Up/Down distance they save).

use crate::candidate::{Candidate, CandidateKind, VcRange};
use crate::penalties::{escape_shortcut_penalty, ESCAPE_DOWN, ESCAPE_UP};
use crate::view::NetworkView;
use hyperx_topology::LinkClass;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which hops the escape subnetwork is allowed to offer.
///
/// The paper's escape subnetwork is the *opportunistic* one (Up/Down plus
/// shortcuts); the pure Up*/Down* variant (AutoNet [31] over the BFS levels,
/// no shortcuts) is what §3.2 argues against — "effectively replacing a
/// deadlock into the marginal throughput of a tree" — and is kept here as the
/// ablation baseline that quantifies the contribution of the shortcuts.
///
/// ```
/// use hyperx_routing::EscapePolicy;
///
/// assert_eq!(EscapePolicy::default(), EscapePolicy::Opportunistic);
/// assert_eq!(EscapePolicy::TreeOnly.name(), "tree-only");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EscapePolicy {
    /// Up/Down links plus opportunistic horizontal shortcuts (the paper's proposal).
    #[default]
    Opportunistic,
    /// Up/Down links only (classic Up*/Down* over the BFS levels).
    TreeOnly,
}

impl EscapePolicy {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            EscapePolicy::Opportunistic => "opportunistic",
            EscapePolicy::TreeOnly => "tree-only",
        }
    }
}

/// Escape-subnetwork candidate tables bound to a network view.
#[derive(Clone, Debug)]
pub struct EscapeTables {
    view: Arc<NetworkView>,
    escape_vc: usize,
    policy: EscapePolicy,
}

impl EscapeTables {
    /// Builds the escape tables with the paper's opportunistic policy. The
    /// network must be connected (otherwise no escape subnetwork exists and
    /// SurePath cannot guarantee delivery).
    ///
    /// `escape_vc` is the virtual channel reserved for the escape subnetwork.
    pub fn new(view: Arc<NetworkView>, escape_vc: usize) -> Self {
        Self::with_policy(view, escape_vc, EscapePolicy::Opportunistic)
    }

    /// Builds the escape tables with an explicit [`EscapePolicy`].
    pub fn with_policy(view: Arc<NetworkView>, escape_vc: usize, policy: EscapePolicy) -> Self {
        // Fail fast with a clear message instead of at the first packet.
        let _ = view.escape_required();
        EscapeTables {
            view,
            escape_vc,
            policy,
        }
    }

    /// The VC the escape subnetwork uses.
    pub fn escape_vc(&self) -> usize {
        self.escape_vc
    }

    /// The candidate policy in force.
    pub fn policy(&self) -> EscapePolicy {
        self.policy
    }

    /// The root switch of the escape subnetwork.
    pub fn root(&self) -> usize {
        self.view.escape_required().root()
    }

    /// Appends the escape candidates for a packet at `current` heading to `dest`.
    pub fn candidates(&self, current: usize, dest: usize, out: &mut Vec<Candidate>) {
        let escape = self.view.escape_required();
        for c in escape.escape_candidates(self.view.network(), current, dest) {
            let (penalty, kind) = match c.class {
                LinkClass::Up => (ESCAPE_UP, CandidateKind::EscapeUp),
                LinkClass::Down => (ESCAPE_DOWN, CandidateKind::EscapeDown),
                LinkClass::Horizontal => {
                    if self.policy == EscapePolicy::TreeOnly {
                        continue;
                    }
                    (
                        escape_shortcut_penalty(c.reduction),
                        CandidateKind::EscapeShortcut,
                    )
                }
            };
            out.push(Candidate {
                port: c.port,
                vcs: VcRange::exact(self.escape_vc),
                penalty,
                kind,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::{FaultSet, FaultShape, HyperX};

    fn tables(side: usize, dims: usize, root: usize) -> EscapeTables {
        let view = Arc::new(NetworkView::healthy(HyperX::regular(dims, side), root));
        EscapeTables::new(view, 3)
    }

    #[test]
    fn all_candidates_use_the_escape_vc() {
        let t = tables(4, 2, 0);
        let mut out = Vec::new();
        t.candidates(1, 14, &mut out);
        assert!(!out.is_empty());
        for c in &out {
            assert_eq!(c.vcs, VcRange::exact(3));
            assert!(c.kind.is_escape());
        }
    }

    #[test]
    fn penalties_match_link_classes() {
        let view = Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 0));
        let t = EscapeTables::new(view.clone(), 1);
        let hx = view.hyperx();
        // From (0,1) to (0,3): the direct red shortcut reduces the Up/Down
        // distance by 2, so it must appear with a 64-phit penalty. The Up hop
        // towards the root (0,0) also reduces the distance and carries 112.
        let a = hx.switch_id(&[0, 1]);
        let b = hx.switch_id(&[0, 3]);
        let mut out = Vec::new();
        t.candidates(a, b, &mut out);
        let direct_port = view.network().port_towards(a, b).unwrap();
        let direct = out.iter().find(|c| c.port == direct_port).unwrap();
        assert_eq!(direct.penalty, 64);
        assert_eq!(direct.kind, CandidateKind::EscapeShortcut);
        let root_port = view
            .network()
            .port_towards(a, hx.switch_id(&[0, 0]))
            .unwrap();
        let up = out.iter().find(|c| c.port == root_port).unwrap();
        assert_eq!(up.penalty, 112);
        assert_eq!(up.kind, CandidateKind::EscapeUp);
    }

    #[test]
    fn shortcuts_preferred_over_tree_links() {
        let t = tables(4, 2, 0);
        let mut out = Vec::new();
        t.candidates(5, 10, &mut out);
        let min_shortcut = out
            .iter()
            .filter(|c| c.kind == CandidateKind::EscapeShortcut)
            .map(|c| c.penalty)
            .min();
        let min_tree = out
            .iter()
            .filter(|c| c.kind != CandidateKind::EscapeShortcut)
            .map(|c| c.penalty)
            .min();
        if let (Some(s), Some(t_)) = (min_shortcut, min_tree) {
            assert!(s < t_);
        }
    }

    #[test]
    fn no_candidates_at_destination() {
        let t = tables(4, 2, 0);
        let mut out = Vec::new();
        t.candidates(7, 7, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn works_with_the_root_under_heavy_faults() {
        // Star-like fault pattern around the root: the escape still provides
        // candidates everywhere because the tables were rebuilt by BFS.
        let hx = HyperX::regular(3, 4);
        let root = hx.switch_id(&[0, 0, 0]);
        let shape = FaultShape::Cross {
            center: vec![0, 0, 0],
            margin: 1,
        };
        let faults = FaultSet::from_shape(&shape, &hx);
        let view = Arc::new(NetworkView::with_faults(hx, &faults, root));
        assert!(view.is_connected());
        let t = EscapeTables::new(view.clone(), 2);
        for cur in 0..view.hyperx().num_switches() {
            for dest in 0..view.hyperx().num_switches() {
                if cur == dest {
                    continue;
                }
                let mut out = Vec::new();
                t.candidates(cur, dest, &mut out);
                assert!(!out.is_empty(), "escape stuck at {cur} -> {dest}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn disconnected_network_rejected() {
        let hx = HyperX::regular(1, 3);
        let faults = FaultSet::from_links(hx.network().healthy_links());
        let view = Arc::new(NetworkView::with_faults(hx, &faults, 0));
        let _ = EscapeTables::new(view, 0);
    }

    #[test]
    fn tree_only_policy_never_offers_shortcuts_but_still_makes_progress() {
        let view = Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 0));
        let tree = EscapeTables::with_policy(view.clone(), 1, EscapePolicy::TreeOnly);
        assert_eq!(tree.policy(), EscapePolicy::TreeOnly);
        for cur in 0..view.hyperx().num_switches() {
            for dest in 0..view.hyperx().num_switches() {
                if cur == dest {
                    continue;
                }
                let mut out = Vec::new();
                tree.candidates(cur, dest, &mut out);
                assert!(!out.is_empty(), "tree escape stuck at {cur} -> {dest}");
                assert!(out.iter().all(|c| c.kind != CandidateKind::EscapeShortcut));
            }
        }
    }

    #[test]
    fn opportunistic_policy_is_a_superset_of_tree_only() {
        let view = Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 5));
        let opp = EscapeTables::new(view.clone(), 1);
        assert_eq!(opp.policy(), EscapePolicy::Opportunistic);
        let tree = EscapeTables::with_policy(view.clone(), 1, EscapePolicy::TreeOnly);
        for cur in 0..view.hyperx().num_switches() {
            for dest in 0..view.hyperx().num_switches() {
                let mut full = Vec::new();
                opp.candidates(cur, dest, &mut full);
                let mut pruned = Vec::new();
                tree.candidates(cur, dest, &mut pruned);
                for c in &pruned {
                    assert!(full.contains(c));
                }
                assert_eq!(
                    full.iter()
                        .filter(|c| c.kind != CandidateKind::EscapeShortcut)
                        .count(),
                    pruned.len()
                );
            }
        }
    }

    #[test]
    fn escape_policy_names() {
        assert_eq!(EscapePolicy::Opportunistic.name(), "opportunistic");
        assert_eq!(EscapePolicy::TreeOnly.name(), "tree-only");
        assert_eq!(EscapePolicy::default(), EscapePolicy::Opportunistic);
    }
}
