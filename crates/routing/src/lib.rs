//! # hyperx-routing
//!
//! Routing algorithms and routing *mechanisms* for HyperX networks, as
//! defined in the SurePath paper (SC 2024).
//!
//! The crate separates two concepts the paper keeps distinct:
//!
//! * A **routing algorithm** ([`RouteAlgorithm`]) decides which neighbours of
//!   the current switch are acceptable next hops for a packet, each with a
//!   *penalty* in phits used to bias the allocator. Implemented algorithms:
//!   [`minimal::MinimalRouting`], [`valiant::ValiantRouting`],
//!   [`dor::DimensionOrderedRouting`], [`dal::DalRouting`],
//!   [`omnidimensional::OmnidimensionalRouting`] and
//!   [`polarized::PolarizedRouting`].
//! * A **routing mechanism** ([`RoutingMechanism`]) combines an algorithm
//!   with a virtual-channel management policy that guarantees deadlock
//!   freedom: either the hop-count *Ladder* ([`mechanism::LadderMechanism`])
//!   or **SurePath** ([`surepath::SurePathMechanism`]), which dedicates one
//!   VC to an opportunistic Up/Down escape subnetwork
//!   ([`updown_escape::EscapeTables`]) and leaves the remaining VCs to the
//!   routing algorithm.
//!
//! The [`mechanism::MechanismSpec`] factory builds the six named
//! configurations evaluated in the paper (Table 4): `Minimal`, `Valiant`,
//! `OmniWAR`, `Polarized`, `OmniSP` and `PolSP`.

pub mod candidate;
pub mod dal;
pub mod dor;
pub mod mechanism;
pub mod minimal;
pub mod omnidimensional;
pub mod penalties;
pub mod polarized;
pub mod surepath;
pub mod updown_escape;
pub mod valiant;
pub mod view;

pub use candidate::{Candidate, CandidateKind, PacketState, RouteCandidate, VcRange};
pub use mechanism::{LadderMechanism, LadderStep, MechanismSpec};
pub use surepath::SurePathMechanism;
pub use updown_escape::{EscapePolicy, EscapeTables};
pub use view::NetworkView;

use rand::RngCore;

/// A routing algorithm: produces acceptable next hops for a packet at a switch.
///
/// Implementations are immutable once built (they may hold routing tables
/// computed from a [`NetworkView`]); per-packet state lives in
/// [`PacketState`] so a single algorithm instance serves every packet of a
/// simulation.
pub trait RouteAlgorithm: Send + Sync {
    /// Short name used in reports ("Minimal", "Polarized", ...).
    fn name(&self) -> &'static str;

    /// Initializes the per-packet routing state for a packet from `source` to
    /// `dest` (switch ids). `rng` is used by algorithms that make random
    /// per-packet choices (Valiant's intermediate switch).
    fn init(&self, source: usize, dest: usize, rng: &mut dyn RngCore) -> PacketState;

    /// Appends to `out` the acceptable next hops for the packet at `current`.
    /// May legitimately produce nothing (e.g. a DOR packet facing a faulty
    /// link, or Omnidimensional out of deroutes with the minimal port dead).
    fn candidates(&self, state: &PacketState, current: usize, out: &mut Vec<RouteCandidate>);

    /// Updates per-packet state after the packet moves from `current` to `next`.
    fn update(&self, state: &mut PacketState, current: usize, next: usize);

    /// Upper bound on the number of switch-to-switch hops a route may take in
    /// the healthy network; used by the Ladder policy to size its VC ladder.
    fn max_route_hops(&self) -> usize;
}

/// Reusable scratch space for candidate computation.
///
/// Mechanisms wrap a [`RouteAlgorithm`] and need an intermediate
/// [`RouteCandidate`] list per query; the simulator's allocator asks for
/// candidates for every head packet of every active switch every cycle, so
/// allocating that list per call dominated the low-load profile. Callers on
/// the hot path hold one `RouteScratch` and pass it down through
/// [`RoutingMechanism::candidates_into`]; the buffer is cleared, never
/// shrunk, so steady state performs zero allocations.
#[derive(Debug, Default)]
pub struct RouteScratch {
    /// Intermediate route list produced by the base routing algorithm.
    pub routes: Vec<RouteCandidate>,
}

/// A routing mechanism: routing algorithm + VC management, the unit the
/// simulator plugs in (one of the rows of Table 4).
pub trait RoutingMechanism: Send + Sync {
    /// Display name ("OmniSP", "PolSP", "Minimal", ...).
    fn name(&self) -> String;

    /// Number of virtual channels per port the mechanism uses.
    fn num_vcs(&self) -> usize;

    /// Index of the escape VC, or `None` if the mechanism has no escape
    /// subnetwork (pure Ladder mechanisms).
    fn escape_vc(&self) -> Option<usize>;

    /// Initializes the per-packet routing state.
    fn init_packet(&self, source: usize, dest: usize, rng: &mut dyn RngCore) -> PacketState;

    /// Appends the candidate output requests for the packet at `current`,
    /// using caller-provided scratch for the intermediate route list — the
    /// allocation-free form the simulator's hot loop calls.
    ///
    /// Must be a pure function of `(state, current)`: the simulator caches
    /// the result per head packet and the A/B scan-equivalence contract
    /// depends on recomputation yielding identical candidates.
    fn candidates_into(
        &self,
        state: &PacketState,
        current: usize,
        scratch: &mut RouteScratch,
        out: &mut Vec<Candidate>,
    );

    /// Convenience form of [`RoutingMechanism::candidates_into`] that
    /// allocates fresh scratch; fine for tests and one-off queries.
    fn candidates(&self, state: &PacketState, current: usize, out: &mut Vec<Candidate>) {
        let mut scratch = RouteScratch::default();
        self.candidates_into(state, current, &mut scratch, out);
    }

    /// Updates per-packet state after the packet takes `cand` from `current` to `next`.
    fn note_hop(&self, state: &mut PacketState, current: usize, next: usize, cand: &Candidate);
}
