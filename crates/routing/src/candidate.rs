//! Candidate hops, virtual-channel ranges and per-packet routing state.

use hyperx_topology::{PortId, SwitchId};
use serde::{Deserialize, Serialize};

/// A half-open range `[lo, hi)` of virtual channels a candidate may use.
///
/// The simulator's allocator picks the concrete VC inside the range (the one
/// with the most credits), which models adaptive VC selection among the
/// routing VCs of SurePath while still supporting the exact-VC requirement of
/// the Ladder policy (`lo + 1 == hi`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VcRange {
    /// First VC of the range.
    pub lo: usize,
    /// One past the last VC of the range.
    pub hi: usize,
}

impl VcRange {
    /// A single-VC range.
    pub fn exact(vc: usize) -> Self {
        VcRange { lo: vc, hi: vc + 1 }
    }

    /// A multi-VC range `[lo, hi)`.
    pub fn span(lo: usize, hi: usize) -> Self {
        assert!(lo < hi, "empty VC range");
        VcRange { lo, hi }
    }

    /// Number of VCs in the range.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the range is empty (never true for ranges built with the constructors).
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// Whether `vc` belongs to the range.
    pub fn contains(&self, vc: usize) -> bool {
        vc >= self.lo && vc < self.hi
    }

    /// Iterates the VCs of the range.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        self.lo..self.hi
    }
}

/// What kind of hop a candidate represents; reported in statistics and used
/// to pick penalties.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CandidateKind {
    /// A hop on a shortest path (or the aligned hop of Omnidimensional).
    Minimal,
    /// A non-minimal hop offered by the routing algorithm.
    Deroute,
    /// An escape hop over an Up link of the escape subnetwork.
    EscapeUp,
    /// An escape hop over a Down link of the escape subnetwork.
    EscapeDown,
    /// An escape hop over an opportunistic horizontal shortcut.
    EscapeShortcut,
}

impl CandidateKind {
    /// Whether the hop travels on the escape subnetwork.
    pub fn is_escape(&self) -> bool {
        matches!(
            self,
            CandidateKind::EscapeUp | CandidateKind::EscapeDown | CandidateKind::EscapeShortcut
        )
    }
}

/// A next-hop candidate produced by a routing algorithm, before VC assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteCandidate {
    /// Output port of the current switch.
    pub port: PortId,
    /// Penalty in phits (paper §3: combined with queue occupancy `Q` as `Q + P`).
    pub penalty: u32,
    /// Whether the hop is a deroute (non-minimal).
    pub deroute: bool,
}

/// A fully specified output request candidate produced by a routing mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    /// Output port of the current switch.
    pub port: PortId,
    /// Virtual channels the packet may occupy at the next switch.
    pub vcs: VcRange,
    /// Penalty in phits.
    pub penalty: u32,
    /// Classification of the hop.
    pub kind: CandidateKind,
}

impl Candidate {
    /// Whether taking this candidate moves (or keeps) the packet onto the escape subnetwork.
    pub fn enters_escape(&self) -> bool {
        self.kind.is_escape()
    }
}

/// Per-packet routing state. A single flat struct shared by every algorithm;
/// fields irrelevant to an algorithm simply stay at their defaults.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketState {
    /// Source switch.
    pub source: SwitchId,
    /// Destination switch.
    pub dest: SwitchId,
    /// Switch-to-switch hops taken so far.
    pub hops: u16,
    /// Minimal (aligned) hops taken so far (Omnidimensional bookkeeping).
    pub minimal_hops: u16,
    /// Non-minimal hops (deroutes) taken so far.
    pub deroutes: u16,
    /// Bitmask of dimensions already derouted in (DAL bookkeeping: DAL allows
    /// at most one deroute per unaligned dimension rather than a global budget).
    pub derouted_dims: u8,
    /// Whether the packet has entered the escape subnetwork (it never leaves it).
    pub in_escape: bool,
    /// Valiant's random intermediate switch (equals `dest` when unused or already reached).
    pub intermediate: SwitchId,
    /// Whether a Valiant packet is in its second phase (intermediate → destination).
    pub phase2: bool,
    /// Polarized's header bit: whether the current switch is closer to the source
    /// than to the destination (`d(c,s) < d(c,t)`).
    pub closer_to_source: bool,
}

impl PacketState {
    /// Fresh state for a packet from `source` to `dest` with no special fields.
    pub fn new(source: SwitchId, dest: SwitchId) -> Self {
        PacketState {
            source,
            dest,
            hops: 0,
            minimal_hops: 0,
            deroutes: 0,
            derouted_dims: 0,
            in_escape: false,
            intermediate: dest,
            phase2: true,
            closer_to_source: true,
        }
    }

    /// The switch the packet is currently steering towards: the Valiant
    /// intermediate during phase 1, the final destination otherwise.
    pub fn current_target(&self) -> SwitchId {
        if self.phase2 {
            self.dest
        } else {
            self.intermediate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_range_exact_and_span() {
        let e = VcRange::exact(3);
        assert_eq!(e.len(), 1);
        assert!(e.contains(3));
        assert!(!e.contains(4));
        let s = VcRange::span(0, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic]
    fn empty_span_rejected() {
        let _ = VcRange::span(2, 2);
    }

    #[test]
    fn candidate_kind_escape_flag() {
        assert!(!CandidateKind::Minimal.is_escape());
        assert!(!CandidateKind::Deroute.is_escape());
        assert!(CandidateKind::EscapeUp.is_escape());
        assert!(CandidateKind::EscapeDown.is_escape());
        assert!(CandidateKind::EscapeShortcut.is_escape());
    }

    #[test]
    fn packet_state_defaults() {
        let st = PacketState::new(3, 17);
        assert_eq!(st.source, 3);
        assert_eq!(st.dest, 17);
        assert_eq!(st.hops, 0);
        assert!(!st.in_escape);
        assert_eq!(st.current_target(), 17);
    }

    #[test]
    fn current_target_tracks_valiant_phase() {
        let mut st = PacketState::new(0, 9);
        st.intermediate = 5;
        st.phase2 = false;
        assert_eq!(st.current_target(), 5);
        st.phase2 = true;
        assert_eq!(st.current_target(), 9);
    }
}
