//! DAL — Dimensionally-Adaptive, Load-balanced routing, the routing
//! originally proposed for HyperX networks (Ahn et al., SC'09, reference [1]
//! of the paper).
//!
//! DAL is an adaptive routing over the *aligned* dimensions of the packet,
//! like Omnidimensional, but with a per-dimension deroute discipline: in each
//! dimension whose coordinate still differs from the destination's the packet
//! may either take the minimal hop or deroute **once** to any other switch of
//! that dimension; after a deroute in a dimension the only remaining option
//! there is the minimal hop. The total route length is therefore bounded by
//! `2n` hops on an `n`-dimensional HyperX.
//!
//! The paper's §1 notes that DAL "only supports one fault in the network";
//! this implementation exists as a baseline to make that comparison concrete:
//! in front of a dead aligned link DAL can sidestep it only while the
//! dimension still has its deroute available, so a packet that already spent
//! it is stuck (and, unlike SurePath, has no escape subnetwork to fall back
//! to).

use crate::candidate::{PacketState, RouteCandidate};
use crate::penalties::{OMNI_DEROUTE, OMNI_MINIMAL};
use crate::view::NetworkView;
use crate::RouteAlgorithm;
use rand::RngCore;
use std::sync::Arc;

/// DAL adaptive routing: one deroute allowed per unaligned dimension.
#[derive(Clone, Debug)]
pub struct DalRouting {
    view: Arc<NetworkView>,
}

impl DalRouting {
    /// Builds DAL routing over the given network view.
    pub fn new(view: Arc<NetworkView>) -> Self {
        assert!(
            view.dims() <= 8,
            "DAL tracks deroutes in an 8-bit mask; {}-dimensional networks are not supported",
            view.dims()
        );
        DalRouting { view }
    }
}

impl RouteAlgorithm for DalRouting {
    fn name(&self) -> &'static str {
        "DAL"
    }

    fn init(&self, source: usize, dest: usize, _rng: &mut dyn RngCore) -> PacketState {
        PacketState::new(source, dest)
    }

    fn candidates(&self, state: &PacketState, current: usize, out: &mut Vec<RouteCandidate>) {
        if current == state.dest {
            return;
        }
        let hx = self.view.hyperx();
        let net = self.view.network();
        let cur = hx.switch_coords(current);
        let dst = hx.switch_coords(state.dest);
        for d in 0..hx.dims() {
            if cur[d] == dst[d] {
                continue;
            }
            let may_deroute = state.derouted_dims & (1 << d) == 0;
            for port in hx.dimension_ports(d) {
                if net.neighbor(current, port).is_none() {
                    continue;
                }
                let meaning = hx.port_meaning(current, port);
                if meaning.value == dst[d] {
                    out.push(RouteCandidate {
                        port,
                        penalty: OMNI_MINIMAL,
                        deroute: false,
                    });
                } else if may_deroute {
                    out.push(RouteCandidate {
                        port,
                        penalty: OMNI_DEROUTE,
                        deroute: true,
                    });
                }
            }
        }
    }

    fn update(&self, state: &mut PacketState, current: usize, next: usize) {
        state.hops += 1;
        let hx = self.view.hyperx();
        let cur = hx.switch_coords(current);
        let nxt = hx.switch_coords(next);
        let dst = hx.switch_coords(state.dest);
        // Exactly one coordinate changes per switch-to-switch hop.
        let changed = (0..hx.dims())
            .find(|&d| cur[d] != nxt[d])
            .expect("a hop always changes exactly one coordinate");
        if nxt[changed] == dst[changed] {
            state.minimal_hops += 1;
        } else {
            state.deroutes += 1;
            state.derouted_dims |= 1 << changed;
        }
    }

    fn max_route_hops(&self) -> usize {
        2 * self.view.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::{FaultSet, HyperX, LinkId};
    use rand::rngs::mock::StepRng;

    fn view(dims: usize, side: usize) -> Arc<NetworkView> {
        Arc::new(NetworkView::healthy(HyperX::regular(dims, side), 0))
    }

    #[test]
    fn offers_minimal_and_deroutes_per_unaligned_dimension() {
        let v = view(2, 4);
        let hx = v.hyperx();
        let algo = DalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0]);
        let dst = hx.switch_id(&[3, 2]);
        let st = algo.init(src, dst, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        // Two unaligned dimensions × 3 neighbours each.
        assert_eq!(out.len(), 6);
        assert_eq!(out.iter().filter(|c| !c.deroute).count(), 2);
        assert_eq!(out.iter().filter(|c| c.deroute).count(), 4);
    }

    #[test]
    fn deroute_is_per_dimension_not_global() {
        let v = view(2, 4);
        let hx = v.hyperx();
        let algo = DalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[0, 0]);
        let dst = hx.switch_id(&[3, 2]);
        let mut st = algo.init(src, dst, &mut rng);
        // Deroute in dimension 0 (to value 1 ≠ 3).
        let mid = hx.switch_id(&[1, 0]);
        algo.update(&mut st, src, mid);
        assert_eq!(st.deroutes, 1);
        assert_eq!(st.derouted_dims, 0b01);
        let mut out = Vec::new();
        algo.candidates(&st, mid, &mut out);
        // Dimension 0 now only offers its minimal hop; dimension 1 still
        // offers its minimal hop plus 3 deroutes.
        let dim0: Vec<_> = out
            .iter()
            .filter(|c| hx.port_meaning(mid, c.port).dim == 0)
            .collect();
        let dim1: Vec<_> = out
            .iter()
            .filter(|c| hx.port_meaning(mid, c.port).dim == 1)
            .collect();
        assert_eq!(dim0.len(), 1);
        assert!(!dim0[0].deroute);
        assert_eq!(dim1.len(), 3);
        assert_eq!(dim1.iter().filter(|c| c.deroute).count(), 2);
    }

    #[test]
    fn aligned_dimensions_are_never_used() {
        let v = view(3, 4);
        let hx = v.hyperx();
        let algo = DalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = hx.switch_id(&[1, 2, 3]);
        let dst = hx.switch_id(&[1, 0, 3]);
        let st = algo.init(src, dst, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| hx.port_meaning(src, c.port).dim == 1));
    }

    #[test]
    fn stuck_after_deroute_when_aligned_link_is_dead() {
        // The paper's claim that DAL tolerates only limited faults: once the
        // dimension's deroute is spent and the aligned link is dead, DAL has
        // no candidate left in a same-row pair.
        let hx = HyperX::regular(1, 4);
        let src = 1usize;
        let dst = 3usize;
        let faults = FaultSet::from_links(vec![LinkId::new(src, dst)]);
        let v = Arc::new(NetworkView::with_faults(hx, &faults, 0));
        let algo = DalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let mut st = algo.init(src, dst, &mut rng);
        // First hop: the aligned link is dead, so only deroutes are offered.
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| c.deroute));
        // Take the deroute to switch 0, then fault the (0,3) link too: the
        // dimension's deroute is spent and the aligned hop is gone → stuck.
        algo.update(&mut st, src, 0);
        let faults2 = FaultSet::from_links(vec![LinkId::new(1, 3), LinkId::new(0, 3)]);
        let v2 = Arc::new(NetworkView::with_faults(HyperX::regular(1, 4), &faults2, 0));
        let algo2 = DalRouting::new(v2);
        let mut out2 = Vec::new();
        algo2.candidates(&st, 0, &mut out2);
        assert!(
            out2.is_empty(),
            "DAL is stuck once its per-dimension deroute is spent"
        );
    }

    #[test]
    fn route_length_bounded_by_two_hops_per_dimension() {
        let v = view(3, 4);
        let algo = DalRouting::new(v.clone());
        assert_eq!(algo.max_route_hops(), 6);
        // Greedy walk always terminates within the bound on the healthy network.
        let hx = v.hyperx();
        let mut rng = StepRng::new(0, 1);
        for (src, dst) in [(0usize, 63usize), (5, 58), (7, 56)] {
            let mut st = algo.init(src, dst, &mut rng);
            let mut current = src;
            let mut hops = 0;
            while current != dst {
                let mut out = Vec::new();
                algo.candidates(&st, current, &mut out);
                assert!(!out.is_empty());
                // Prefer minimal candidates (penalty 0), mimicking a quiet network.
                let best = out.iter().min_by_key(|c| (c.penalty, c.port)).unwrap();
                let next = v.network().neighbor(current, best.port).unwrap().switch;
                algo.update(&mut st, current, next);
                current = next;
                hops += 1;
                assert!(hops <= algo.max_route_hops());
            }
            let _ = hx;
        }
    }

    #[test]
    fn candidates_empty_at_destination() {
        let v = view(2, 4);
        let algo = DalRouting::new(v);
        let mut rng = StepRng::new(0, 1);
        let st = algo.init(9, 9, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, 9, &mut out);
        assert!(out.is_empty());
    }
}
