//! A consistent view of the (possibly faulty) network shared by every routing
//! table: the topology, the all-pairs distance matrix and the Up/Down escape
//! subnetwork.
//!
//! Whenever the set of alive links changes (a failure or a repair), a new
//! `NetworkView` is built; this mirrors the paper's model in which routing
//! tables are recomputed by BFS "at boot time, upgrade or failure".

use hyperx_topology::{DistanceMatrix, FaultSet, HyperX, Network, SwitchId, UpDownEscape};

/// Immutable snapshot of the network used to build routing tables.
#[derive(Clone, Debug)]
pub struct NetworkView {
    hyperx: HyperX,
    distances: DistanceMatrix,
    escape: Option<UpDownEscape>,
    escape_root: SwitchId,
}

impl NetworkView {
    /// Builds a view of the healthy HyperX with the escape subnetwork rooted at `escape_root`.
    pub fn healthy(hyperx: HyperX, escape_root: SwitchId) -> Self {
        Self::from_hyperx(hyperx, escape_root)
    }

    /// Applies `faults` to a copy of `hyperx` and builds the view, recomputing
    /// distances and the escape subnetwork over the surviving links.
    pub fn with_faults(mut hyperx: HyperX, faults: &FaultSet, escape_root: SwitchId) -> Self {
        faults.apply(hyperx.network_mut());
        Self::from_hyperx(hyperx, escape_root)
    }

    fn from_hyperx(hyperx: HyperX, escape_root: SwitchId) -> Self {
        assert!(
            escape_root < hyperx.num_switches(),
            "escape root out of range"
        );
        let distances = DistanceMatrix::compute(hyperx.network());
        let escape = if distances.is_connected() {
            Some(UpDownEscape::new(hyperx.network(), escape_root))
        } else {
            None
        };
        NetworkView {
            hyperx,
            distances,
            escape,
            escape_root,
        }
    }

    /// The HyperX topology (its network already has the faults applied).
    pub fn hyperx(&self) -> &HyperX {
        &self.hyperx
    }

    /// The switch-level network with faults applied.
    pub fn network(&self) -> &Network {
        self.hyperx.network()
    }

    /// All-pairs distances over alive links.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.distances
    }

    /// Graph distance between two switches over alive links.
    #[inline]
    pub fn distance(&self, a: SwitchId, b: SwitchId) -> u16 {
        self.distances.get(a, b)
    }

    /// The escape subnetwork, present whenever the network is connected.
    pub fn escape(&self) -> Option<&UpDownEscape> {
        self.escape.as_ref()
    }

    /// The escape subnetwork, panicking with a clear message when the network
    /// is disconnected (SurePath cannot guarantee delivery in that case).
    pub fn escape_required(&self) -> &UpDownEscape {
        self.escape
            .as_ref()
            .expect("the network is disconnected: no escape subnetwork can be built")
    }

    /// Root switch requested for the escape subnetwork.
    pub fn escape_root(&self) -> SwitchId {
        self.escape_root
    }

    /// Whether every pair of switches is still mutually reachable.
    pub fn is_connected(&self) -> bool {
        self.distances.is_connected()
    }

    /// Current network diameter (`usize::MAX` when disconnected).
    pub fn diameter(&self) -> usize {
        self.distances.diameter()
    }

    /// Number of dimensions of the HyperX.
    pub fn dims(&self) -> usize {
        self.hyperx.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::FaultShape;

    #[test]
    fn healthy_view_has_escape_and_hamming_distances() {
        let view = NetworkView::healthy(HyperX::regular(2, 4), 0);
        assert!(view.is_connected());
        assert_eq!(view.diameter(), 2);
        assert!(view.escape().is_some());
        assert_eq!(view.escape_root(), 0);
        let hx = view.hyperx();
        for a in 0..hx.num_switches() {
            for b in 0..hx.num_switches() {
                assert_eq!(
                    view.distance(a, b) as usize,
                    hx.coords().hamming_distance(a, b)
                );
            }
        }
    }

    #[test]
    fn faulty_view_updates_distances() {
        let hx = HyperX::regular(2, 4);
        let shape = FaultShape::Row {
            along_dim: 0,
            at: vec![0, 0],
        };
        let faults = FaultSet::from_shape(&shape, &hx);
        let view = NetworkView::with_faults(hx, &faults, 0);
        assert!(view.is_connected());
        // Two switches of the removed row can no longer talk directly; the
        // shortest surviving path leaves the row and comes back (3 hops).
        let a = view.hyperx().switch_id(&[0, 0]);
        let b = view.hyperx().switch_id(&[3, 0]);
        assert_eq!(view.distance(a, b), 3);
        assert!(view.escape().is_some());
    }

    #[test]
    fn disconnected_view_has_no_escape() {
        let hx = HyperX::regular(1, 3);
        // Remove every link: 3 isolated switches.
        let faults = FaultSet::from_links(hx.network().healthy_links());
        let view = NetworkView::with_faults(hx, &faults, 0);
        assert!(!view.is_connected());
        assert!(view.escape().is_none());
        assert_eq!(view.diameter(), usize::MAX);
    }

    #[test]
    #[should_panic]
    fn escape_required_panics_when_disconnected() {
        let hx = HyperX::regular(1, 3);
        let faults = FaultSet::from_links(hx.network().healthy_links());
        let view = NetworkView::with_faults(hx, &faults, 0);
        let _ = view.escape_required();
    }

    #[test]
    #[should_panic]
    fn out_of_range_root_rejected() {
        let _ = NetworkView::healthy(HyperX::regular(2, 4), 1000);
    }
}
