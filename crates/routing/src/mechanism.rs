//! Routing mechanisms: routing algorithm + virtual-channel management.
//!
//! This module provides the hop-count *Ladder* policy used by the baselines
//! of Table 4 (Minimal, Valiant, OmniWAR, Polarized) and the
//! [`MechanismSpec`] factory that builds every named configuration of the
//! paper, including the SurePath ones defined in [`crate::surepath`].

use crate::candidate::{Candidate, CandidateKind, PacketState, VcRange};
use crate::dal::DalRouting;
use crate::dor::DimensionOrderedRouting;
use crate::minimal::MinimalRouting;
use crate::omnidimensional::OmnidimensionalRouting;
use crate::polarized::PolarizedRouting;
use crate::surepath::SurePathMechanism;
use crate::updown_escape::EscapePolicy;
use crate::valiant::ValiantRouting;
use crate::view::NetworkView;
use crate::{RouteAlgorithm, RoutingMechanism};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How many virtual channels the Ladder advances per hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LadderStep {
    /// Hop `h` may only use VC `h` (Valiant, OmniWAR, Polarized in Table 4).
    OnePerStep,
    /// Hop `h` may use VCs `2h` and `2h + 1` (Minimal in Table 4).
    TwoPerStep,
}

impl LadderStep {
    /// VCs usable at hop `h` given `num_vcs` available, or `None` when the
    /// ladder is exhausted (the packet has taken more hops than the ladder
    /// supports — the exact failure mode the paper attributes to Ladder VC
    /// management under faults).
    pub fn vcs_for_hop(&self, hop: u16, num_vcs: usize) -> Option<VcRange> {
        match self {
            LadderStep::OnePerStep => {
                let vc = hop as usize;
                (vc < num_vcs).then(|| VcRange::exact(vc))
            }
            LadderStep::TwoPerStep => {
                let lo = 2 * hop as usize;
                (lo + 1 < num_vcs).then(|| VcRange::span(lo, lo + 2))
            }
        }
    }
}

/// A routing mechanism whose deadlock avoidance is the hop-count Ladder:
/// packets climb one rung of virtual channels per switch-to-switch hop, so
/// the channel dependency graph is acyclic as long as routes are shorter than
/// the ladder.
pub struct LadderMechanism {
    algo: Box<dyn RouteAlgorithm>,
    display_name: String,
    num_vcs: usize,
    step: LadderStep,
}

impl LadderMechanism {
    /// Wraps a routing algorithm with a Ladder of `num_vcs` virtual channels.
    pub fn new(
        algo: Box<dyn RouteAlgorithm>,
        display_name: impl Into<String>,
        num_vcs: usize,
        step: LadderStep,
    ) -> Self {
        assert!(num_vcs >= 1, "a ladder needs at least one VC");
        LadderMechanism {
            algo,
            display_name: display_name.into(),
            num_vcs,
            step,
        }
    }

    /// The ladder step policy.
    pub fn step(&self) -> LadderStep {
        self.step
    }
}

impl RoutingMechanism for LadderMechanism {
    fn name(&self) -> String {
        self.display_name.clone()
    }

    fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    fn escape_vc(&self) -> Option<usize> {
        None
    }

    fn init_packet(&self, source: usize, dest: usize, rng: &mut dyn RngCore) -> PacketState {
        self.algo.init(source, dest, rng)
    }

    fn candidates_into(
        &self,
        state: &PacketState,
        current: usize,
        scratch: &mut crate::RouteScratch,
        out: &mut Vec<Candidate>,
    ) {
        let Some(vcs) = self.step.vcs_for_hop(state.hops, self.num_vcs) else {
            // Ladder exhausted: the mechanism can no longer move this packet.
            return;
        };
        scratch.routes.clear();
        self.algo.candidates(state, current, &mut scratch.routes);
        out.extend(scratch.routes.iter().map(|r| Candidate {
            port: r.port,
            vcs,
            penalty: r.penalty,
            kind: if r.deroute {
                CandidateKind::Deroute
            } else {
                CandidateKind::Minimal
            },
        }));
    }

    fn note_hop(&self, state: &mut PacketState, current: usize, next: usize, _cand: &Candidate) {
        self.algo.update(state, current, next);
    }
}

/// The named routing-mechanism configurations evaluated in the paper (Table 4),
/// plus DOR which the paper discusses as a motivating fragile baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MechanismSpec {
    /// Shortest-path routing with a two-VCs-per-step Ladder.
    Minimal,
    /// Valiant load balancing with a one-VC-per-step Ladder.
    Valiant,
    /// Omnidimensional routes with a one-VC-per-step Ladder (the paper's OmniWAR configuration).
    OmniWAR,
    /// Polarized routes with a one-VC-per-step Ladder.
    Polarized,
    /// SurePath over Omnidimensional routes (OmniSP).
    OmniSP,
    /// SurePath over Polarized routes (PolSP).
    PolSP,
    /// Dimension-ordered routing (fragile; used in motivation experiments only).
    Dor,
    /// DAL, the routing originally proposed for HyperX (one deroute per
    /// dimension, Ladder deadlock avoidance); motivation baseline.
    Dal,
    /// Ablation: OmniSP with a pure Up*/Down* tree escape (no shortcuts).
    OmniSPTree,
    /// Ablation: PolSP with a pure Up*/Down* tree escape (no shortcuts).
    PolSPTree,
}

impl MechanismSpec {
    /// The six mechanisms compared in the fault-free evaluation (Figures 4 and 5).
    pub fn fault_free_lineup() -> [MechanismSpec; 6] {
        [
            MechanismSpec::Minimal,
            MechanismSpec::Valiant,
            MechanismSpec::OmniWAR,
            MechanismSpec::Polarized,
            MechanismSpec::OmniSP,
            MechanismSpec::PolSP,
        ]
    }

    /// The two SurePath configurations used in the fault experiments (Figures 6, 8, 9, 10).
    pub fn surepath_lineup() -> [MechanismSpec; 2] {
        [MechanismSpec::OmniSP, MechanismSpec::PolSP]
    }

    /// The escape-shortcut ablation lineup: each SurePath configuration next
    /// to its tree-only (no shortcuts) counterpart.
    pub fn escape_ablation_lineup() -> [MechanismSpec; 4] {
        [
            MechanismSpec::OmniSP,
            MechanismSpec::OmniSPTree,
            MechanismSpec::PolSP,
            MechanismSpec::PolSPTree,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            MechanismSpec::Minimal => "Minimal",
            MechanismSpec::Valiant => "Valiant",
            MechanismSpec::OmniWAR => "OmniWAR",
            MechanismSpec::Polarized => "Polarized",
            MechanismSpec::OmniSP => "OmniSP",
            MechanismSpec::PolSP => "PolSP",
            MechanismSpec::Dor => "DOR",
            MechanismSpec::Dal => "DAL",
            MechanismSpec::OmniSPTree => "OmniSP-tree",
            MechanismSpec::PolSPTree => "PolSP-tree",
        }
    }

    /// Whether the mechanism uses SurePath (and therefore tolerates faults).
    pub fn is_surepath(&self) -> bool {
        matches!(
            self,
            MechanismSpec::OmniSP
                | MechanismSpec::PolSP
                | MechanismSpec::OmniSPTree
                | MechanismSpec::PolSPTree
        )
    }

    /// Number of VCs the paper assigns to this mechanism on an `n`-dimensional
    /// HyperX for the fair fault-free comparison: `2n` for every mechanism.
    pub fn default_num_vcs(&self, dims: usize) -> usize {
        2 * dims
    }

    /// Number of VCs used in the fault experiments: SurePath runs with 4 VCs
    /// (3 routing + 1 escape) regardless of the dimension, non-SurePath
    /// mechanisms keep their fault-free requirement.
    pub fn faulty_num_vcs(&self, dims: usize) -> usize {
        if self.is_surepath() {
            4
        } else {
            self.default_num_vcs(dims)
        }
    }

    /// Builds the mechanism over the given network view with `num_vcs` VCs.
    pub fn build(&self, view: Arc<NetworkView>, num_vcs: usize) -> Box<dyn RoutingMechanism> {
        match self {
            MechanismSpec::Minimal => Box::new(LadderMechanism::new(
                Box::new(MinimalRouting::new(view)),
                "Minimal",
                num_vcs,
                LadderStep::TwoPerStep,
            )),
            MechanismSpec::Valiant => Box::new(LadderMechanism::new(
                Box::new(ValiantRouting::new(view)),
                "Valiant",
                num_vcs,
                LadderStep::OnePerStep,
            )),
            MechanismSpec::OmniWAR => Box::new(LadderMechanism::new(
                Box::new(OmnidimensionalRouting::new(view)),
                "OmniWAR",
                num_vcs,
                LadderStep::OnePerStep,
            )),
            MechanismSpec::Polarized => Box::new(LadderMechanism::new(
                Box::new(PolarizedRouting::new(view)),
                "Polarized",
                num_vcs,
                LadderStep::OnePerStep,
            )),
            MechanismSpec::OmniSP => Box::new(SurePathMechanism::new(
                Box::new(OmnidimensionalRouting::new(view.clone())),
                "OmniSP",
                view,
                num_vcs,
            )),
            MechanismSpec::PolSP => Box::new(SurePathMechanism::new(
                Box::new(PolarizedRouting::new(view.clone())),
                "PolSP",
                view,
                num_vcs,
            )),
            MechanismSpec::Dor => Box::new(LadderMechanism::new(
                Box::new(DimensionOrderedRouting::new(view)),
                "DOR",
                num_vcs,
                LadderStep::TwoPerStep,
            )),
            MechanismSpec::Dal => Box::new(LadderMechanism::new(
                Box::new(DalRouting::new(view)),
                "DAL",
                num_vcs,
                LadderStep::OnePerStep,
            )),
            MechanismSpec::OmniSPTree => Box::new(SurePathMechanism::with_escape_policy(
                Box::new(OmnidimensionalRouting::new(view.clone())),
                "OmniSP-tree",
                view,
                num_vcs,
                EscapePolicy::TreeOnly,
            )),
            MechanismSpec::PolSPTree => Box::new(SurePathMechanism::with_escape_policy(
                Box::new(PolarizedRouting::new(view.clone())),
                "PolSP-tree",
                view,
                num_vcs,
                EscapePolicy::TreeOnly,
            )),
        }
    }

    /// Builds the mechanism with the paper's default VC count for the view's dimension.
    pub fn build_default(&self, view: Arc<NetworkView>) -> Box<dyn RoutingMechanism> {
        let vcs = self.default_num_vcs(view.dims());
        self.build(view, vcs)
    }

    /// Parses a mechanism name as used on benchmark command lines.
    pub fn parse(name: &str) -> Option<MechanismSpec> {
        match name.to_ascii_lowercase().as_str() {
            "minimal" => Some(MechanismSpec::Minimal),
            "valiant" => Some(MechanismSpec::Valiant),
            "omniwar" => Some(MechanismSpec::OmniWAR),
            "polarized" => Some(MechanismSpec::Polarized),
            "omnisp" => Some(MechanismSpec::OmniSP),
            "polsp" => Some(MechanismSpec::PolSP),
            "dor" => Some(MechanismSpec::Dor),
            "dal" => Some(MechanismSpec::Dal),
            "omnisp-tree" | "omnisptree" => Some(MechanismSpec::OmniSPTree),
            "polsp-tree" | "polsptree" => Some(MechanismSpec::PolSPTree),
            _ => None,
        }
    }
}

impl std::fmt::Display for MechanismSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::HyperX;
    use rand::rngs::mock::StepRng;

    fn view() -> Arc<NetworkView> {
        Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 0))
    }

    #[test]
    fn ladder_step_vc_assignment() {
        assert_eq!(
            LadderStep::OnePerStep.vcs_for_hop(0, 4),
            Some(VcRange::exact(0))
        );
        assert_eq!(
            LadderStep::OnePerStep.vcs_for_hop(3, 4),
            Some(VcRange::exact(3))
        );
        assert_eq!(LadderStep::OnePerStep.vcs_for_hop(4, 4), None);
        assert_eq!(
            LadderStep::TwoPerStep.vcs_for_hop(0, 4),
            Some(VcRange::span(0, 2))
        );
        assert_eq!(
            LadderStep::TwoPerStep.vcs_for_hop(1, 4),
            Some(VcRange::span(2, 4))
        );
        assert_eq!(LadderStep::TwoPerStep.vcs_for_hop(2, 4), None);
    }

    #[test]
    fn ladder_mechanism_exhaustion_returns_no_candidates() {
        let v = view();
        let mech = MechanismSpec::Minimal.build(v, 4);
        let mut rng = StepRng::new(0, 1);
        let mut st = mech.init_packet(0, 15, &mut rng);
        st.hops = 2; // Minimal with 4 VCs supports 2 hops (two-per-step).
        let mut out = Vec::new();
        mech.candidates(&st, 5, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn every_spec_builds_and_reports_consistent_metadata() {
        let v = view();
        for spec in MechanismSpec::fault_free_lineup() {
            let mech = spec.build_default(v.clone());
            assert_eq!(mech.name(), spec.name());
            assert_eq!(mech.num_vcs(), spec.default_num_vcs(2));
            assert_eq!(mech.escape_vc().is_some(), spec.is_surepath());
        }
    }

    #[test]
    fn surepath_fault_vc_budget_is_four() {
        assert_eq!(MechanismSpec::OmniSP.faulty_num_vcs(3), 4);
        assert_eq!(MechanismSpec::PolSP.faulty_num_vcs(2), 4);
        assert_eq!(MechanismSpec::Polarized.faulty_num_vcs(3), 6);
    }

    #[test]
    fn ladder_candidates_carry_hop_vc() {
        let v = view();
        let mech = MechanismSpec::Valiant.build(v.clone(), 4);
        let mut rng = StepRng::new(7, 1);
        let mut st = mech.init_packet(0, 15, &mut rng);
        let mut out = Vec::new();
        mech.candidates(&st, 0, &mut out);
        assert!(!out.is_empty());
        assert!(out.iter().all(|c| c.vcs == VcRange::exact(0)));
        // After one hop the VC advances.
        let cand = out[0];
        let next = v.network().neighbor(0, cand.port).unwrap().switch;
        mech.note_hop(&mut st, 0, next, &cand);
        let mut out2 = Vec::new();
        mech.candidates(&st, next, &mut out2);
        assert!(out2.iter().all(|c| c.vcs == VcRange::exact(1)));
    }

    #[test]
    fn parse_round_trips_names() {
        for spec in [
            MechanismSpec::Minimal,
            MechanismSpec::Valiant,
            MechanismSpec::OmniWAR,
            MechanismSpec::Polarized,
            MechanismSpec::OmniSP,
            MechanismSpec::PolSP,
            MechanismSpec::Dor,
            MechanismSpec::Dal,
            MechanismSpec::OmniSPTree,
            MechanismSpec::PolSPTree,
        ] {
            assert_eq!(MechanismSpec::parse(spec.name()), Some(spec));
        }
        assert_eq!(MechanismSpec::parse("nonsense"), None);
    }

    #[test]
    fn tree_ablation_variants_are_surepath_and_never_offer_shortcuts() {
        let v = view();
        for spec in [MechanismSpec::OmniSPTree, MechanismSpec::PolSPTree] {
            assert!(spec.is_surepath());
            let mech = spec.build(v.clone(), 4);
            assert_eq!(mech.escape_vc(), Some(3));
            let mut rng = StepRng::new(0, 1);
            let mut st = mech.init_packet(0, 15, &mut rng);
            st.in_escape = true;
            let mut out = Vec::new();
            mech.candidates(&st, 0, &mut out);
            assert!(!out.is_empty());
            assert!(out.iter().all(|c| c.kind != CandidateKind::EscapeShortcut));
        }
    }

    #[test]
    fn escape_ablation_lineup_pairs_each_variant_with_its_tree_twin() {
        let lineup = MechanismSpec::escape_ablation_lineup();
        assert_eq!(lineup.len(), 4);
        assert!(lineup.iter().all(|s| s.is_surepath()));
    }

    #[test]
    fn dal_builds_with_a_ladder_and_reports_its_name() {
        let v = view();
        let mech = MechanismSpec::Dal.build(v, 4);
        assert_eq!(mech.name(), "DAL");
        assert_eq!(mech.escape_vc(), None);
        assert_eq!(mech.num_vcs(), 4);
    }
}
