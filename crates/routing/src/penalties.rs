//! The allocation penalties (in phits) given in Section 3 of the paper.
//!
//! The paper combines each candidate's penalty `P` with the occupancy `Q` of
//! the requested output and picks the lowest `Q + P`. The absolute values
//! below are quoted verbatim from the paper; it notes that "there are large
//! regions of similar performance, so the specific values have little
//! importance".

/// Omnidimensional routing: minimal (aligned) hop.
pub const OMNI_MINIMAL: u32 = 0;
/// Omnidimensional routing: deroute (non-minimal hop).
pub const OMNI_DEROUTE: u32 = 64;

/// Polarized routing: candidate with the best possible weight gain (Δµ = 2).
pub const POLARIZED_BEST: u32 = 0;
/// Polarized routing: candidate with Δµ one less than the best (Δµ = 1).
pub const POLARIZED_MID: u32 = 64;
/// Polarized routing: candidate with Δµ two less than the best (Δµ = 0).
pub const POLARIZED_LOW: u32 = 80;

/// Escape subnetwork: Up hop towards the root (most penalized, to avoid
/// congesting the root).
pub const ESCAPE_UP: u32 = 112;
/// Escape subnetwork: Down hop away from the root.
pub const ESCAPE_DOWN: u32 = 96;
/// Escape subnetwork: opportunistic shortcut reducing the Up/Down distance by 1.
pub const ESCAPE_SHORTCUT_1: u32 = 80;
/// Escape subnetwork: opportunistic shortcut reducing the Up/Down distance by 2.
pub const ESCAPE_SHORTCUT_2: u32 = 64;
/// Escape subnetwork: opportunistic shortcut reducing the Up/Down distance by 3 or more.
pub const ESCAPE_SHORTCUT_3: u32 = 48;

/// Minimal / Valiant / DOR hops carry no penalty.
pub const SHORTEST_PATH: u32 = 0;

/// Penalty of an opportunistic escape shortcut as a function of its Up/Down
/// distance reduction (paper §3.2: 80, 64 or 48 phits for reductions of 1, 2
/// and ≥ 3 respectively).
pub fn escape_shortcut_penalty(reduction: u16) -> u32 {
    match reduction {
        0 => unreachable!("a shortcut candidate always reduces the Up/Down distance"),
        1 => ESCAPE_SHORTCUT_1,
        2 => ESCAPE_SHORTCUT_2,
        _ => ESCAPE_SHORTCUT_3,
    }
}

/// Penalty of a Polarized candidate as a function of its weight gain Δµ ∈ {0, 1, 2}.
pub fn polarized_penalty(delta_mu: i8) -> u32 {
    match delta_mu {
        2 => POLARIZED_BEST,
        1 => POLARIZED_MID,
        0 => POLARIZED_LOW,
        _ => unreachable!("Polarized never offers candidates with negative Δµ"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortcut_penalties_match_paper() {
        assert_eq!(escape_shortcut_penalty(1), 80);
        assert_eq!(escape_shortcut_penalty(2), 64);
        assert_eq!(escape_shortcut_penalty(3), 48);
        assert_eq!(escape_shortcut_penalty(7), 48);
    }

    #[test]
    fn polarized_penalties_match_paper() {
        assert_eq!(polarized_penalty(2), 0);
        assert_eq!(polarized_penalty(1), 64);
        assert_eq!(polarized_penalty(0), 80);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the constant ordering
    fn escape_ordering_prefers_shortcuts_over_tree_links() {
        // The paper penalizes Up the most, then Down, then shortcuts by how
        // much they reduce the Up/Down distance.
        assert!(ESCAPE_UP > ESCAPE_DOWN);
        assert!(ESCAPE_DOWN > ESCAPE_SHORTCUT_1);
        assert!(ESCAPE_SHORTCUT_1 > ESCAPE_SHORTCUT_2);
        assert!(ESCAPE_SHORTCUT_2 > ESCAPE_SHORTCUT_3);
    }

    #[test]
    #[should_panic]
    fn zero_reduction_is_a_bug() {
        let _ = escape_shortcut_penalty(0);
    }
}
