//! Minimal (shortest-path) routing over BFS tables.
//!
//! Minimal routing offers, at every switch, every alive port whose far
//! endpoint is strictly closer to the destination. It survives arbitrary
//! failures (the tables are recomputed by BFS) but cannot spread load over
//! non-minimal paths, which is why the paper uses it as the robust but
//! low-performance baseline.

use crate::candidate::{PacketState, RouteCandidate};
use crate::penalties::SHORTEST_PATH;
use crate::view::NetworkView;
use crate::RouteAlgorithm;
use rand::RngCore;
use std::sync::Arc;

/// Fully adaptive shortest-path routing.
#[derive(Clone, Debug)]
pub struct MinimalRouting {
    view: Arc<NetworkView>,
}

impl MinimalRouting {
    /// Builds minimal routing tables over the given network view.
    pub fn new(view: Arc<NetworkView>) -> Self {
        MinimalRouting { view }
    }

    /// Appends every alive port of `current` that gets strictly closer to `target`.
    pub(crate) fn minimal_ports(
        view: &NetworkView,
        current: usize,
        target: usize,
        penalty: u32,
        out: &mut Vec<RouteCandidate>,
    ) {
        let here = view.distance(current, target);
        for (port, nb) in view.network().neighbors(current) {
            if view.distance(nb.switch, target) < here {
                out.push(RouteCandidate {
                    port,
                    penalty,
                    deroute: false,
                });
            }
        }
    }
}

impl RouteAlgorithm for MinimalRouting {
    fn name(&self) -> &'static str {
        "Minimal"
    }

    fn init(&self, source: usize, dest: usize, _rng: &mut dyn RngCore) -> PacketState {
        PacketState::new(source, dest)
    }

    fn candidates(&self, state: &PacketState, current: usize, out: &mut Vec<RouteCandidate>) {
        if current == state.dest {
            return;
        }
        Self::minimal_ports(&self.view, current, state.dest, SHORTEST_PATH, out);
    }

    fn update(&self, state: &mut PacketState, _current: usize, _next: usize) {
        state.hops += 1;
        state.minimal_hops += 1;
    }

    fn max_route_hops(&self) -> usize {
        self.view.diameter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperx_topology::{FaultSet, HyperX};
    use rand::rngs::mock::StepRng;

    fn view(side: usize, dims: usize) -> Arc<NetworkView> {
        Arc::new(NetworkView::healthy(HyperX::regular(dims, side), 0))
    }

    #[test]
    fn candidates_always_reduce_distance() {
        let v = view(4, 2);
        let algo = MinimalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        for src in 0..v.hyperx().num_switches() {
            for dst in 0..v.hyperx().num_switches() {
                let st = algo.init(src, dst, &mut rng);
                let mut out = Vec::new();
                algo.candidates(&st, src, &mut out);
                if src == dst {
                    assert!(out.is_empty());
                    continue;
                }
                assert!(!out.is_empty());
                for c in &out {
                    let nb = v.network().neighbor(src, c.port).unwrap();
                    assert!(v.distance(nb.switch, dst) < v.distance(src, dst));
                    assert!(!c.deroute);
                    assert_eq!(c.penalty, 0);
                }
            }
        }
    }

    #[test]
    fn candidate_count_in_healthy_hyperx() {
        // In a healthy HyperX at Hamming distance h from the destination there
        // are exactly h minimal ports (one aligned port per unaligned dimension).
        let v = view(4, 3);
        let algo = MinimalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let hx = v.hyperx();
        let src = hx.switch_id(&[0, 0, 0]);
        let dst = hx.switch_id(&[1, 2, 0]);
        let st = algo.init(src, dst, &mut rng);
        let mut out = Vec::new();
        algo.candidates(&st, src, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn survives_faults_while_connected() {
        use rand::SeedableRng;
        let hx = HyperX::regular(2, 4);
        // Seeded like every other fault draw in the workspace: identical runs
        // must see identical fault sets (the campaign runner's resume
        // fingerprinting depends on this property holding everywhere).
        let mut rng_f = rand_chacha::ChaCha8Rng::seed_from_u64(0xFA17);
        let faults = FaultSet::random_connected_sequence(hx.network(), 10, &mut rng_f);
        let v = Arc::new(NetworkView::with_faults(hx, &faults, 0));
        let algo = MinimalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        for src in 0..v.hyperx().num_switches() {
            for dst in 0..v.hyperx().num_switches() {
                if src == dst {
                    continue;
                }
                let st = algo.init(src, dst, &mut rng);
                let mut out = Vec::new();
                algo.candidates(&st, src, &mut out);
                assert!(
                    !out.is_empty(),
                    "minimal routing must always progress in a connected network"
                );
            }
        }
    }

    #[test]
    fn walking_candidates_reaches_destination_within_distance() {
        let v = view(5, 2);
        let algo = MinimalRouting::new(v.clone());
        let mut rng = StepRng::new(0, 1);
        let src = 0;
        let dst = v.hyperx().num_switches() - 1;
        let mut st = algo.init(src, dst, &mut rng);
        let mut current = src;
        let mut hops = 0;
        while current != dst {
            let mut out = Vec::new();
            algo.candidates(&st, current, &mut out);
            let next = v.network().neighbor(current, out[0].port).unwrap().switch;
            algo.update(&mut st, current, next);
            current = next;
            hops += 1;
            assert!(hops <= v.diameter());
        }
        assert_eq!(hops as u16, st.hops);
    }

    #[test]
    fn max_route_hops_is_diameter() {
        let v = view(8, 3);
        let algo = MinimalRouting::new(v);
        assert_eq!(algo.max_route_hops(), 3);
    }
}
