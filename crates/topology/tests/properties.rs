//! Property-based tests of the topology substrate.

use hyperx_topology::{
    bfs_distances, diameter_under_fault_sequence, edge_disjoint_paths, shortest_path_count,
    survivability_under_faults, DistanceHistogram, DistanceMatrix, FaultSet, FaultShape, HyperX,
    RootPolicy, UpDownEscape,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: HyperX sides with 1 to 3 dimensions of side 2..=6, capped in total size.
fn sides_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(2usize..=6, 1..=3).prop_filter("keep networks small", |sides| {
        sides.iter().product::<usize>() <= 128
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn graph_distance_equals_hamming_distance(sides in sides_strategy()) {
        let hx = HyperX::new(&sides);
        let d = DistanceMatrix::compute(hx.network());
        for a in 0..hx.num_switches() {
            for b in 0..hx.num_switches() {
                prop_assert_eq!(d.get(a, b) as usize, hx.coords().hamming_distance(a, b));
            }
        }
    }

    #[test]
    fn single_source_bfs_matches_matrix(sides in sides_strategy(), seed in 0u64..1000) {
        let hx = HyperX::new(&sides);
        let src = (seed as usize) % hx.num_switches();
        let d = DistanceMatrix::compute(hx.network());
        let row = bfs_distances(hx.network(), src);
        #[allow(clippy::needless_range_loop)] // b indexes row and matrix together
        for b in 0..hx.num_switches() {
            prop_assert_eq!(row[b], d.get(src, b));
        }
    }

    #[test]
    fn faults_apply_and_revert_roundtrip(sides in sides_strategy(), count in 0usize..20, seed in 0u64..1000) {
        let hx = HyperX::new(&sides);
        let mut net = hx.network().clone();
        let healthy = net.num_links();
        let count = count.min(healthy);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let faults = FaultSet::random_sequence(&net, count, &mut rng);
        prop_assert_eq!(faults.apply(&mut net), count);
        prop_assert_eq!(net.num_links(), healthy - count);
        prop_assert_eq!(net.num_faults(), count);
        prop_assert_eq!(faults.revert(&mut net), count);
        prop_assert_eq!(net.num_links(), healthy);
    }

    #[test]
    fn diameter_is_monotone_under_incremental_faults(sides in sides_strategy(), seed in 0u64..1000) {
        let hx = HyperX::new(&sides);
        let total = hx.network().num_links();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let seq = FaultSet::random_sequence(hx.network(), total.min(40), &mut rng);
        let samples = diameter_under_fault_sequence(hx.network(), &seq, 5);
        let mut last = 0usize;
        for s in &samples {
            match s.diameter {
                Some(d) => {
                    prop_assert!(d >= last, "diameter shrank from {} to {}", last, d);
                    last = d;
                }
                None => break,
            }
        }
    }

    #[test]
    fn updown_distance_bounds_and_symmetry(sides in sides_strategy(), root_seed in 0u64..1000) {
        let hx = HyperX::new(&sides);
        let root = (root_seed as usize) % hx.num_switches();
        let esc = UpDownEscape::new(hx.network(), root);
        let d = DistanceMatrix::compute(hx.network());
        for a in 0..hx.num_switches() {
            prop_assert_eq!(esc.updown_distance(a, a), 0);
            for b in 0..hx.num_switches() {
                let ud = esc.updown_distance(a, b);
                prop_assert_eq!(ud, esc.updown_distance(b, a));
                prop_assert!(ud >= d.get(a, b));
                prop_assert!(ud <= esc.level(a) + esc.level(b));
            }
        }
    }

    #[test]
    fn escape_candidates_exist_and_make_progress_under_faults(
        sides in sides_strategy(),
        fault_count in 0usize..25,
        seed in 0u64..1000,
    ) {
        let hx = HyperX::new(&sides);
        let mut net = hx.network().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Only keep faults that preserve connectivity (SurePath's precondition).
        let faults = FaultSet::random_connected_sequence(&net, fault_count, &mut rng);
        faults.apply(&mut net);
        prop_assert!(net.is_connected());
        let esc = UpDownEscape::new(&net, 0);
        for cur in 0..hx.num_switches() {
            for dest in 0..hx.num_switches() {
                let cands = esc.escape_candidates(&net, cur, dest);
                if cur == dest {
                    prop_assert!(cands.is_empty());
                } else {
                    prop_assert!(!cands.is_empty(), "no escape candidate {} -> {}", cur, dest);
                    for c in cands {
                        prop_assert!(c.reduction > 0);
                        prop_assert_eq!(
                            esc.updown_distance(cur, dest) - esc.updown_distance(c.neighbor, dest),
                            c.reduction
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_shape_link_count_formula(dims in 2usize..=3, side in 3usize..=6, dim_seed in 0usize..3) {
        let hx = HyperX::regular(dims, side);
        let along_dim = dim_seed % dims;
        let shape = FaultShape::Row { along_dim, at: vec![0; dims] };
        prop_assert_eq!(shape.links(&hx).len(), side * (side - 1) / 2);
    }

    #[test]
    fn subgrid_shape_link_count_formula(dims in 2usize..=3, side in 4usize..=6, size in 2usize..=3) {
        prop_assume!(size <= side);
        let hx = HyperX::regular(dims, side);
        let shape = FaultShape::Subgrid { low: vec![0; dims], size };
        // Each of the dims · size^(dims-1) row segments is a complete K_size.
        let expected = dims * size.pow(dims as u32 - 1) * size * (size - 1) / 2;
        prop_assert_eq!(shape.links(&hx).len(), expected);
    }

    #[test]
    fn cross_shape_link_count_and_root_degree(dims in 2usize..=3, side in 4usize..=6, margin in 1usize..=2) {
        prop_assume!(margin < side);
        let hx = HyperX::regular(dims, side);
        let center = vec![side / 2; dims];
        let shape = FaultShape::Cross { center: center.clone(), margin };
        let arm = side - margin;
        prop_assert_eq!(shape.links(&hx).len(), dims * arm * (arm - 1) / 2);
        let mut net = hx.network().clone();
        FaultSet::from_shape(&shape, &hx).apply(&mut net);
        prop_assert_eq!(net.degree(hx.switch_id(&center)), dims * margin);
    }

    #[test]
    fn link_classes_partition_alive_links(sides in sides_strategy(), root_seed in 0u64..100) {
        let hx = HyperX::new(&sides);
        let root = (root_seed as usize) % hx.num_switches();
        let esc = UpDownEscape::new(hx.network(), root);
        let census = esc.class_census(hx.network());
        prop_assert_eq!(census.updown + census.horizontal, hx.network().num_links());
    }

    #[test]
    fn shortest_path_count_is_product_of_factorial_like_terms(sides in sides_strategy(), pair_seed in 0u64..1000) {
        // In a Hamming graph a pair differing in d dimensions has exactly d!
        // shortest paths (one single-hop correction per dimension, in any order).
        let hx = HyperX::new(&sides);
        let n = hx.num_switches();
        let a = (pair_seed as usize) % n;
        let b = (pair_seed as usize * 31 + 7) % n;
        let d = hx.coords().hamming_distance(a, b);
        let factorial: u64 = (1..=d as u64).product::<u64>().max(1);
        prop_assert_eq!(shortest_path_count(hx.network(), a, b), factorial);
    }

    #[test]
    fn edge_disjoint_paths_equal_radix_in_healthy_hyperx(sides in sides_strategy(), pair_seed in 0u64..1000) {
        // Hamming graphs are maximally edge-connected (edge connectivity = degree).
        let hx = HyperX::new(&sides);
        let n = hx.num_switches();
        prop_assume!(n >= 2);
        let a = (pair_seed as usize) % n;
        let b = (pair_seed as usize * 17 + 3) % n;
        prop_assume!(a != b);
        prop_assert_eq!(edge_disjoint_paths(hx.network(), a, b), hx.switch_radix());
    }

    #[test]
    fn edge_disjoint_paths_never_exceed_min_alive_degree(
        sides in sides_strategy(),
        fault_count in 0usize..20,
        seed in 0u64..1000,
    ) {
        let hx = HyperX::new(&sides);
        let mut net = hx.network().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        FaultSet::random_sequence(&net, fault_count.min(net.num_links()), &mut rng).apply(&mut net);
        let n = hx.num_switches();
        let a = (seed as usize) % n;
        let b = (seed as usize * 13 + 5) % n;
        prop_assume!(a != b);
        let paths = edge_disjoint_paths(&net, a, b);
        prop_assert!(paths <= net.degree(a).min(net.degree(b)));
        // Menger lower bound sanity: connected pairs have at least one path.
        let d = DistanceMatrix::compute(&net);
        prop_assert_eq!(paths > 0, d.get(a, b) != u16::MAX);
    }

    #[test]
    fn distance_histogram_is_consistent_with_matrix(sides in sides_strategy(), fault_count in 0usize..15, seed in 0u64..1000) {
        let hx = HyperX::new(&sides);
        let mut net = hx.network().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        FaultSet::random_sequence(&net, fault_count.min(net.num_links()), &mut rng).apply(&mut net);
        let dm = DistanceMatrix::compute(&net);
        let hist = DistanceHistogram::from_matrix(&dm);
        let n = hx.num_switches() as u64;
        prop_assert_eq!(hist.reachable_pairs() + hist.unreachable_pairs, n * (n - 1) / 2);
        if dm.is_connected() {
            prop_assert_eq!(hist.max_distance(), Some(dm.diameter()));
            let mean = hist.mean_distance().unwrap();
            prop_assert!((mean - dm.average_distance()).abs() < 1e-9);
        }
    }

    #[test]
    fn survivability_report_bounds(sides in sides_strategy(), fault_count in 0usize..20, seed in 0u64..1000) {
        let hx = HyperX::new(&sides);
        let healthy = hx.network().clone();
        let mut faulty = healthy.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        FaultSet::random_sequence(&faulty, fault_count.min(faulty.num_links()), &mut rng).apply(&mut faulty);
        let report = survivability_under_faults(&healthy, &faulty, Some(50), &mut rng);
        prop_assert!(report.survival_ratio() >= 0.0 && report.survival_ratio() <= 1.0);
        prop_assert!(report.stretched_ratio() >= 0.0 && report.stretched_ratio() <= 1.0);
        for p in &report.pairs {
            // Faults can only lengthen routes.
            if p.survives() {
                prop_assert!(p.faulty_distance >= p.healthy_distance);
            }
            prop_assert!(p.healthy_paths >= 1);
        }
        if fault_count == 0 {
            prop_assert_eq!(report.survival_ratio(), 1.0);
            prop_assert_eq!(report.max_stretch(), 0);
            prop_assert!((report.mean_path_retention() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn root_policies_always_return_valid_switches(
        sides in sides_strategy(),
        fault_count in 0usize..20,
        seed in 0u64..1000,
    ) {
        let hx = HyperX::new(&sides);
        let mut net = hx.network().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        FaultSet::random_connected_sequence(&net, fault_count, &mut rng).apply(&mut net);
        let dm = DistanceMatrix::compute(&net);
        for policy in RootPolicy::ablation_lineup() {
            let root = policy.select(&net);
            prop_assert!(root < hx.num_switches());
            prop_assert_eq!(policy.select_with_distances(&net, &dm), root);
        }
        // The degree-based policy must pick a switch of maximum alive degree.
        let best = RootPolicy::MaxAliveDegree.select(&net);
        let max_degree = (0..net.num_switches()).map(|s| net.degree(s)).max().unwrap();
        prop_assert_eq!(net.degree(best), max_degree);
    }
}
