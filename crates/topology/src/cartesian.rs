//! Cartesian products of networks.
//!
//! HyperX networks are Cartesian products of complete graphs. The generic
//! product is provided here both as a substrate in its own right (meshes,
//! tori and Hamming graphs are all Cartesian products) and as an independent
//! construction that the test-suite uses to cross-check the direct HyperX
//! constructor in [`crate::hamming`].

use crate::builder::NetworkBuilder;
use crate::graph::Network;

/// Builds the Cartesian product `a □ b`.
///
/// The product has `|a|·|b|` switches; switch `(x, y)` is assigned the flat
/// id `x + y·|a|`. Two switches `(x, y)` and `(x', y')` are adjacent iff
/// either `y = y'` and `x ~ x'` in `a`, or `x = x'` and `y ~ y'` in `b`.
pub fn cartesian_product(a: &Network, b: &Network) -> Network {
    let na = a.num_switches();
    let nb = b.num_switches();
    let mut builder = NetworkBuilder::new(na * nb);
    let id = |x: usize, y: usize| x + y * na;
    // "a"-dimension links first so that port grouping matches the HyperX
    // convention of dimension-major port layout.
    for y in 0..nb {
        for x in 0..na {
            for (_, n) in a.neighbors(x) {
                if x < n.switch {
                    builder.add_link(id(x, y), id(n.switch, y));
                }
            }
        }
    }
    for y in 0..nb {
        for (_, n) in b.neighbors(y) {
            if y < n.switch {
                for x in 0..na {
                    builder.add_link(id(x, y), id(x, n.switch));
                }
            }
        }
    }
    builder.build()
}

/// Folds [`cartesian_product`] over a sequence of factor networks.
///
/// # Panics
/// Panics if `factors` is empty.
pub fn cartesian_power(factors: &[Network]) -> Network {
    assert!(!factors.is_empty(), "at least one factor is required");
    let mut acc = factors[0].clone();
    for f in &factors[1..] {
        acc = cartesian_product(&acc, f);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::DistanceMatrix;
    use crate::complete::complete_graph;

    #[test]
    fn product_of_k2_k2_is_a_square() {
        let k2 = complete_graph(2);
        let sq = cartesian_product(&k2, &k2);
        assert_eq!(sq.num_switches(), 4);
        assert_eq!(sq.num_links(), 4);
        for s in 0..4 {
            assert_eq!(sq.degree(s), 2);
        }
        let d = DistanceMatrix::compute(&sq);
        assert_eq!(d.diameter(), 2);
    }

    #[test]
    fn product_distance_is_sum_of_factor_distances() {
        let k3 = complete_graph(3);
        let k4 = complete_graph(4);
        let p = cartesian_product(&k3, &k4);
        let d = DistanceMatrix::compute(&p);
        for x1 in 0..3 {
            for y1 in 0..4 {
                for x2 in 0..3 {
                    for y2 in 0..4 {
                        let expected = usize::from(x1 != x2) + usize::from(y1 != y2);
                        assert_eq!(
                            d.get(x1 + y1 * 3, x2 + y2 * 3) as usize,
                            expected,
                            "distance between ({x1},{y1}) and ({x2},{y2})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn power_of_three_completes_matches_hamming_size() {
        let k4 = complete_graph(4);
        let h = cartesian_power(&[k4.clone(), k4.clone(), k4]);
        assert_eq!(h.num_switches(), 64);
        // Each switch has 3·(4−1) = 9 neighbors.
        for s in 0..64 {
            assert_eq!(h.degree(s), 9);
        }
        let d = DistanceMatrix::compute(&h);
        assert_eq!(d.diameter(), 3);
    }

    #[test]
    #[should_panic]
    fn empty_power_rejected() {
        let _ = cartesian_power(&[]);
    }
}
