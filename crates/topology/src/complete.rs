//! Complete graphs `K_n`, the 1-dimensional building block of HyperX.

use crate::builder::NetworkBuilder;
use crate::graph::Network;

/// Builds the complete graph `K_n`: `n` switches, every pair connected.
///
/// Ports of switch `s` are ordered by increasing neighbor id (skipping `s`
/// itself), so port `p` of switch `s` leads to switch `p` when `p < s` and to
/// switch `p + 1` otherwise.
///
/// # Panics
/// Panics if `n < 2`.
pub fn complete_graph(n: usize) -> Network {
    assert!(n >= 2, "a complete graph needs at least two switches");
    let mut b = NetworkBuilder::new(n);
    // Insert links grouped by the lower endpoint but in an order that yields
    // the neighbor-sorted port layout documented above: for each switch s we
    // need its ports sorted by neighbor id. Adding links (x, y) for x < y in
    // lexicographic order achieves exactly that on both endpoints.
    for x in 0..n {
        for y in (x + 1)..n {
            b.add_link(x, y);
        }
    }
    b.build()
}

/// The expected number of links of `K_n`, i.e. `n·(n−1)/2`.
pub fn complete_graph_links(n: usize) -> usize {
    n * (n - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_distances;

    #[test]
    fn k5_shape() {
        let net = complete_graph(5);
        assert_eq!(net.num_switches(), 5);
        assert_eq!(net.num_links(), complete_graph_links(5));
        for s in 0..5 {
            assert_eq!(net.degree(s), 4);
        }
    }

    #[test]
    fn k33_matches_paper_introduction_example() {
        // The paper's introduction: 33 switches based on K33 uses 528 wires.
        let net = complete_graph(33);
        assert_eq!(net.num_links(), 528);
    }

    #[test]
    fn diameter_is_one() {
        let net = complete_graph(7);
        let d = bfs_distances(&net, 0);
        assert!(d.iter().skip(1).all(|&x| x == 1));
    }

    #[test]
    fn port_layout_is_neighbor_sorted() {
        let net = complete_graph(6);
        for s in 0..6 {
            let neighbors: Vec<usize> = net.neighbors(s).map(|(_, n)| n.switch).collect();
            let mut sorted = neighbors.clone();
            sorted.sort_unstable();
            assert_eq!(
                neighbors, sorted,
                "ports of switch {s} must be neighbor-sorted"
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_graphs() {
        let _ = complete_graph(1);
    }
}
