//! Structural resiliency analysis: shortest-path counts, edge-disjoint path
//! diversity and distance distributions.
//!
//! Section 2 of the paper motivates SurePath with the structural robustness
//! of Hamming graphs: worst-case faults were characterised in [22] and the
//! number of surviving paths under failures is calculated in [30]
//! (Rottenstreich, *Path diversity and survivability for the HyperX
//! datacenter topology*). This module provides the graph-theoretic side of
//! those claims so they can be checked against the topologies actually used
//! in the evaluation:
//!
//! * [`shortest_path_count`] — how many minimal routes survive between a pair
//!   (DOR uses one of them; Omnidimensional may use all of them).
//! * [`edge_disjoint_paths`] — Menger-style path diversity, the number of
//!   faults needed to separate a specific pair.
//! * [`DistanceHistogram`] — the distribution of pairwise distances, from
//!   which diameter and average distance (Table 3) follow.
//! * [`PairSurvivability`] / [`survivability_under_faults`] — how a fault set
//!   changes distances and minimal-path counts across sampled pairs.

use crate::bfs::{bfs_distances, DistanceMatrix, UNREACHABLE};
use crate::graph::{Network, SwitchId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Number of distinct shortest paths from `source` to `dest` over the alive
/// links of `net`, or 0 when `dest` is unreachable.
///
/// Counts are exact (dynamic programming over BFS levels) and saturate at
/// `u64::MAX` instead of overflowing on pathological inputs.
///
/// ```
/// use hyperx_topology::{shortest_path_count, HyperX};
///
/// // A pair differing in all three dimensions of a HyperX has 3! = 6 minimal routes.
/// let hx = HyperX::regular(3, 4);
/// let a = hx.switch_id(&[0, 0, 0]);
/// let b = hx.switch_id(&[1, 2, 3]);
/// assert_eq!(shortest_path_count(hx.network(), a, b), 6);
/// ```
pub fn shortest_path_count(net: &Network, source: SwitchId, dest: SwitchId) -> u64 {
    if source == dest {
        return 1;
    }
    let dist = bfs_distances(net, source);
    if dist[dest] == UNREACHABLE {
        return 0;
    }
    // Process switches in order of increasing distance from the source.
    let mut order: Vec<SwitchId> = (0..net.num_switches())
        .filter(|&s| dist[s] != UNREACHABLE && dist[s] <= dist[dest])
        .collect();
    order.sort_by_key(|&s| dist[s]);
    let mut count = vec![0u64; net.num_switches()];
    count[source] = 1;
    for &s in &order {
        if s == source {
            continue;
        }
        let mut total = 0u64;
        for (_, nb) in net.neighbors(s) {
            if dist[nb.switch] + 1 == dist[s] {
                total = total.saturating_add(count[nb.switch]);
            }
        }
        count[s] = total;
    }
    count[dest]
}

/// Number of pairwise edge-disjoint paths between `source` and `dest` over the
/// alive links (Menger's theorem: the minimum number of link faults that
/// disconnect the pair).
///
/// Computed with unit-capacity augmenting paths (Edmonds–Karp); the value is
/// bounded by the smaller alive degree of the two endpoints, so the number of
/// augmentation rounds stays small even on the paper's radix-46 switches.
pub fn edge_disjoint_paths(net: &Network, source: SwitchId, dest: SwitchId) -> usize {
    if source == dest {
        return 0;
    }
    let n = net.num_switches();
    // Net flow over directed pairs; an undirected link has capacity 1, and
    // sending flow against an existing unit cancels it.
    use std::collections::HashMap;
    let mut flow: HashMap<(SwitchId, SwitchId), i32> = HashMap::new();
    let mut total = 0usize;
    loop {
        // BFS over residual edges.
        let mut parent: Vec<Option<SwitchId>> = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        parent[source] = Some(source);
        'bfs: while let Some(u) = queue.pop_front() {
            for (_, nb) in net.neighbors(u) {
                let v = nb.switch;
                if parent[v].is_some() {
                    continue;
                }
                let f = *flow.get(&(u, v)).unwrap_or(&0);
                // Residual capacity = 1 - f (capacity 1 each way, reverse flow cancels).
                if 1 - f <= 0 {
                    continue;
                }
                parent[v] = Some(u);
                if v == dest {
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
        if parent[dest].is_none() {
            break;
        }
        // Augment one unit along the parent chain.
        let mut v = dest;
        while v != source {
            let u = parent[v].expect("path reconstructed from BFS");
            *flow.entry((u, v)).or_insert(0) += 1;
            *flow.entry((v, u)).or_insert(0) -= 1;
            v = u;
        }
        total += 1;
    }
    total
}

/// Histogram of pairwise switch-to-switch distances (ordered pairs excluded,
/// unreachable pairs counted separately).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceHistogram {
    /// `counts[d]` is the number of unordered pairs at distance `d` (index 0 unused).
    pub counts: Vec<u64>,
    /// Number of unordered pairs that cannot reach each other.
    pub unreachable_pairs: u64,
}

impl DistanceHistogram {
    /// Builds the histogram from an all-pairs distance matrix.
    pub fn from_matrix(dm: &DistanceMatrix) -> Self {
        let n = dm.num_switches();
        let mut hist = DistanceHistogram::default();
        for a in 0..n {
            for b in (a + 1)..n {
                let d = dm.get(a, b);
                if d == UNREACHABLE {
                    hist.unreachable_pairs += 1;
                } else {
                    let d = d as usize;
                    if hist.counts.len() <= d {
                        hist.counts.resize(d + 1, 0);
                    }
                    hist.counts[d] += 1;
                }
            }
        }
        hist
    }

    /// Builds the histogram directly from a network.
    pub fn from_network(net: &Network) -> Self {
        Self::from_matrix(&DistanceMatrix::compute(net))
    }

    /// Total number of unordered reachable pairs.
    pub fn reachable_pairs(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Largest finite distance, or `None` when no pair is reachable.
    pub fn max_distance(&self) -> Option<usize> {
        self.counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(d, _)| d)
    }

    /// Mean pairwise distance over reachable pairs (`None` when none are).
    pub fn mean_distance(&self) -> Option<f64> {
        let pairs = self.reachable_pairs();
        if pairs == 0 {
            return None;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        Some(sum as f64 / pairs as f64)
    }
}

/// Per-pair structural effect of a fault set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairSurvivability {
    /// Source switch of the sampled pair.
    pub source: SwitchId,
    /// Destination switch of the sampled pair.
    pub dest: SwitchId,
    /// Distance in the healthy network.
    pub healthy_distance: u16,
    /// Distance with the faults applied (`u16::MAX` when disconnected).
    pub faulty_distance: u16,
    /// Number of shortest paths in the healthy network.
    pub healthy_paths: u64,
    /// Number of shortest paths (at the new, possibly longer distance) with faults.
    pub faulty_paths: u64,
}

impl PairSurvivability {
    /// Whether the pair is still connected under the faults.
    pub fn survives(&self) -> bool {
        self.faulty_distance != UNREACHABLE
    }

    /// How much longer the shortest route became (0 when disconnected —
    /// use [`survives`](Self::survives) to distinguish).
    pub fn distance_stretch(&self) -> u16 {
        if self.survives() {
            self.faulty_distance - self.healthy_distance
        } else {
            0
        }
    }
}

/// Summary of [`survivability_under_faults`] over all sampled pairs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SurvivabilityReport {
    /// Per-pair measurements.
    pub pairs: Vec<PairSurvivability>,
}

impl SurvivabilityReport {
    /// Fraction of sampled pairs that remain connected.
    pub fn survival_ratio(&self) -> f64 {
        if self.pairs.is_empty() {
            return 1.0;
        }
        self.pairs.iter().filter(|p| p.survives()).count() as f64 / self.pairs.len() as f64
    }

    /// Fraction of surviving pairs whose shortest route got longer.
    pub fn stretched_ratio(&self) -> f64 {
        let surviving: Vec<_> = self.pairs.iter().filter(|p| p.survives()).collect();
        if surviving.is_empty() {
            return 0.0;
        }
        surviving
            .iter()
            .filter(|p| p.distance_stretch() > 0)
            .count() as f64
            / surviving.len() as f64
    }

    /// Largest distance stretch across surviving pairs.
    pub fn max_stretch(&self) -> u16 {
        self.pairs
            .iter()
            .filter(|p| p.survives())
            .map(|p| p.distance_stretch())
            .max()
            .unwrap_or(0)
    }

    /// Mean ratio of surviving shortest paths to healthy shortest paths, over
    /// pairs that kept their healthy distance (the quantity studied in [30]).
    pub fn mean_path_retention(&self) -> f64 {
        let same_distance: Vec<_> = self
            .pairs
            .iter()
            .filter(|p| p.survives() && p.distance_stretch() == 0 && p.healthy_paths > 0)
            .collect();
        if same_distance.is_empty() {
            return 0.0;
        }
        same_distance
            .iter()
            .map(|p| p.faulty_paths as f64 / p.healthy_paths as f64)
            .sum::<f64>()
            / same_distance.len() as f64
    }
}

/// Measures how `faulty` (a network with faults already applied) compares to
/// `healthy` across `sample_pairs` random ordered pairs (or every ordered pair
/// when `sample_pairs` is `None`).
pub fn survivability_under_faults<R: Rng>(
    healthy: &Network,
    faulty: &Network,
    sample_pairs: Option<usize>,
    rng: &mut R,
) -> SurvivabilityReport {
    assert_eq!(
        healthy.num_switches(),
        faulty.num_switches(),
        "healthy and faulty networks must have the same switches"
    );
    let n = healthy.num_switches();
    let mut pairs: Vec<(SwitchId, SwitchId)> = (0..n)
        .flat_map(|a| (0..n).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    if let Some(k) = sample_pairs {
        pairs.shuffle(rng);
        pairs.truncate(k);
    }
    let healthy_dm = DistanceMatrix::compute(healthy);
    let faulty_dm = DistanceMatrix::compute(faulty);
    let pairs = pairs
        .into_iter()
        .map(|(a, b)| PairSurvivability {
            source: a,
            dest: b,
            healthy_distance: healthy_dm.get(a, b),
            faulty_distance: faulty_dm.get(a, b),
            healthy_paths: shortest_path_count(healthy, a, b),
            faulty_paths: shortest_path_count(faulty, a, b),
        })
        .collect();
    SurvivabilityReport { pairs }
}

/// Number of links crossing the bisection that splits coordinate `dim` of a
/// HyperX into low and high halves. For a `k`-side dimension with `S` switches
/// in total this is `S/k · ⌈k/2⌉ · ⌊k/2⌋` in the healthy network; with faults
/// applied the count reflects only alive links.
pub fn dimension_bisection_links(hx: &crate::hamming::HyperX, net: &Network, dim: usize) -> usize {
    assert!(dim < hx.dims(), "dimension out of range");
    let half = hx.side(dim) / 2;
    let mut count = 0usize;
    for s in 0..net.num_switches() {
        let cs = hx.switch_coords(s)[dim];
        for (_, nb) in net.neighbors(s) {
            if s < nb.switch {
                let cn = hx.switch_coords(nb.switch)[dim];
                if (cs < half) != (cn < half) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::complete_graph;
    use crate::faults::{FaultSet, FaultShape};
    use crate::hamming::HyperX;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shortest_path_counts_in_complete_graph() {
        // In K_n every distinct pair is adjacent: exactly one shortest path.
        let net = complete_graph(6);
        for a in 0..6 {
            for b in 0..6 {
                let expected = 1; // includes a == b (the empty path)
                assert_eq!(shortest_path_count(&net, a, b), expected);
            }
        }
    }

    #[test]
    fn shortest_path_counts_in_hyperx_match_permutations_of_dimensions() {
        // In a Hamming graph the minimal paths between switches differing in
        // `d` dimensions are the d! dimension orders (one candidate per
        // dimension since each correction is a single hop).
        let hx = HyperX::regular(3, 4);
        let a = hx.switch_id(&[0, 0, 0]);
        let b3 = hx.switch_id(&[1, 2, 3]);
        let b2 = hx.switch_id(&[1, 2, 0]);
        let b1 = hx.switch_id(&[0, 3, 0]);
        assert_eq!(shortest_path_count(hx.network(), a, b3), 6);
        assert_eq!(shortest_path_count(hx.network(), a, b2), 2);
        assert_eq!(shortest_path_count(hx.network(), a, b1), 1);
    }

    #[test]
    fn shortest_path_count_zero_when_disconnected() {
        let mut net = complete_graph(3);
        net.remove_link(0, 1);
        net.remove_link(0, 2);
        assert_eq!(shortest_path_count(&net, 0, 1), 0);
        assert_eq!(shortest_path_count(&net, 1, 2), 1);
    }

    #[test]
    fn edge_disjoint_paths_match_degree_in_complete_graph() {
        // K_n is (n-1)-edge-connected.
        let net = complete_graph(5);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    assert_eq!(edge_disjoint_paths(&net, a, b), 4);
                }
            }
        }
    }

    #[test]
    fn edge_disjoint_paths_in_hyperx_equal_switch_radix() {
        // Hamming graphs are maximally edge-connected: the edge connectivity
        // equals the degree n(k-1) (LaForge et al. [22]).
        let hx = HyperX::regular(2, 4);
        let radix = hx.switch_radix();
        let pairs = [(0usize, 5usize), (0, 15), (3, 12)];
        for (a, b) in pairs {
            assert_eq!(edge_disjoint_paths(hx.network(), a, b), radix);
        }
    }

    #[test]
    fn edge_disjoint_paths_drop_with_faults_and_hit_zero_when_disconnected() {
        let hx = HyperX::regular(2, 3);
        let mut net = hx.network().clone();
        let a = hx.switch_id(&[0, 0]);
        let b = hx.switch_id(&[2, 2]);
        let healthy = edge_disjoint_paths(&net, a, b);
        // Cut all links of `a` but one.
        let neighbors: Vec<_> = net.neighbors(a).map(|(_, nb)| nb.switch).collect();
        for &nb in &neighbors[1..] {
            net.remove_link(a, nb);
        }
        assert_eq!(edge_disjoint_paths(&net, a, b), 1);
        assert!(healthy > 1);
        net.remove_link(a, neighbors[0]);
        assert_eq!(edge_disjoint_paths(&net, a, b), 0);
    }

    #[test]
    fn distance_histogram_of_2d_hyperx() {
        // 4×4 HyperX: each switch has 6 neighbours at distance 1 and 9 at
        // distance 2; 16 switches → 48 pairs at distance 1, 72 at distance 2.
        let hx = HyperX::regular(2, 4);
        let hist = DistanceHistogram::from_network(hx.network());
        assert_eq!(hist.counts.get(1), Some(&48));
        assert_eq!(hist.counts.get(2), Some(&72));
        assert_eq!(hist.unreachable_pairs, 0);
        assert_eq!(hist.reachable_pairs(), 120);
        assert_eq!(hist.max_distance(), Some(2));
        let mean = hist.mean_distance().unwrap();
        assert!((mean - (48.0 + 2.0 * 72.0) / 120.0).abs() < 1e-12);
    }

    #[test]
    fn distance_histogram_counts_unreachable_pairs() {
        let mut net = complete_graph(4);
        for x in 1..4 {
            net.remove_link(0, x);
        }
        let hist = DistanceHistogram::from_network(&net);
        assert_eq!(hist.unreachable_pairs, 3);
        assert_eq!(hist.reachable_pairs(), 3);
    }

    #[test]
    fn table3_average_distance_from_histogram() {
        // The histogram reproduces Table 3's average distance for the 2D network.
        let hx = HyperX::regular(2, 16);
        let hist = DistanceHistogram::from_network(hx.network());
        let mean = hist.mean_distance().unwrap();
        assert!((mean - 1.8823529411764706).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn survivability_report_on_row_faults() {
        let hx = HyperX::regular(2, 8);
        let healthy = hx.network().clone();
        let mut faulty = healthy.clone();
        let shape = FaultShape::Row {
            along_dim: 0,
            at: vec![0, 3],
        };
        FaultSet::from_shape(&shape, &hx).apply(&mut faulty);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let report = survivability_under_faults(&healthy, &faulty, Some(200), &mut rng);
        assert_eq!(report.pairs.len(), 200);
        // Removing one row never disconnects an 8×8 HyperX.
        assert_eq!(report.survival_ratio(), 1.0);
        // Pairs inside the removed row must take a detour of exactly one extra hop.
        assert!(report.max_stretch() <= 2);
        assert!(report.mean_path_retention() > 0.0);
    }

    #[test]
    fn survivability_detects_disconnection() {
        let hx = HyperX::regular(1, 4);
        let healthy = hx.network().clone();
        let mut faulty = healthy.clone();
        // Isolate switch 0 completely.
        for x in 1..4 {
            faulty.remove_link(0, x);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let report = survivability_under_faults(&healthy, &faulty, None, &mut rng);
        assert!(report.survival_ratio() < 1.0);
        let dead = report.pairs.iter().filter(|p| !p.survives()).count();
        // 3 ordered pairs from 0 plus 3 into 0.
        assert_eq!(dead, 6);
    }

    #[test]
    fn pair_survivability_helpers() {
        let p = PairSurvivability {
            source: 0,
            dest: 1,
            healthy_distance: 1,
            faulty_distance: 3,
            healthy_paths: 4,
            faulty_paths: 2,
        };
        assert!(p.survives());
        assert_eq!(p.distance_stretch(), 2);
        let dead = PairSurvivability {
            faulty_distance: UNREACHABLE,
            ..p
        };
        assert!(!dead.survives());
        assert_eq!(dead.distance_stretch(), 0);
    }

    #[test]
    fn bisection_counts_match_formula() {
        // k = 4: per row, links crossing the half split = 2·2 = 4; the 2D
        // network has 4 rows per dimension ⇒ 16 crossing links along dim 0.
        let hx = HyperX::regular(2, 4);
        let crossing = dimension_bisection_links(&hx, hx.network(), 0);
        assert_eq!(crossing, 16);
        // Removing one crossing link reduces the count.
        let mut net = hx.network().clone();
        let a = hx.switch_id(&[0, 0]);
        let b = hx.switch_id(&[2, 0]);
        net.remove_link(a, b);
        assert_eq!(dimension_bisection_links(&hx, &net, 0), 15);
    }

    #[test]
    fn rpn_throughput_bound_matches_paper_bisection_argument() {
        // §4: in a K_k row with k/2 confined source/destination pairs, the
        // k²/2 server flows share k²/4 source→destination links ⇒ load 0.5.
        let k = 8usize;
        let source_dest_links = (k / 2) * (k / 2);
        let flows = k * k / 2;
        assert_eq!(source_dest_links * 2, flows);
    }
}
