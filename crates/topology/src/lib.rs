//! # hyperx-topology
//!
//! Switch-level topology substrate for the SurePath reproduction.
//!
//! This crate provides everything the routing layer and the simulator need to
//! know about the *shape* of the network:
//!
//! * [`Network`] — an immutable switch-level multigraph-free adjacency
//!   structure with stable port numbering and link-fault support.
//! * [`HyperX`] — Hamming-graph (HyperX) constructors and coordinate
//!   arithmetic ([`coordinates`]).
//! * [`complete`] / [`cartesian`] — the building blocks HyperX is defined
//!   from (complete graphs and Cartesian products), usable on their own.
//! * [`faults`] — link fault sets: random fault sequences and the geometric
//!   fault shapes used in the paper (Row, Subplane, Cross, Subcube, Star).
//! * [`bfs`] / [`properties`] — distance matrices, routing tables, diameter,
//!   average distance and connectivity analysis (used for Figure 1 and
//!   Table 3 of the paper).
//! * [`updown`] — the opportunistic Up/Down escape subnetwork of SurePath:
//!   link colouring from a BFS root, Up/Down distances, and the escape
//!   candidate tables described in Section 3.2 of the paper.
//! * [`analysis`] — structural resiliency analysis (shortest-path counts,
//!   edge-disjoint path diversity, distance histograms, survivability under
//!   fault sets), backing the paper's §2 robustness argument.
//! * [`rootsel`] — escape-root selection policies, including the
//!   "avoid a switch with many faulty links" advice of §6.
//!
//! The crate is deliberately free of any simulator or flow-control notion;
//! it only answers questions about graphs.

pub mod analysis;
pub mod bfs;
pub mod builder;
pub mod cartesian;
pub mod complete;
pub mod coordinates;
pub mod faults;
pub mod graph;
pub mod hamming;
pub mod properties;
pub mod rootsel;
pub mod updown;

pub use analysis::{
    dimension_bisection_links, edge_disjoint_paths, shortest_path_count,
    survivability_under_faults, DistanceHistogram, PairSurvivability, SurvivabilityReport,
};
pub use bfs::{bfs_distances, DistanceMatrix};
pub use builder::NetworkBuilder;
pub use coordinates::{CoordinateSystem, Coordinates};
pub use faults::{FaultSet, FaultShape};
pub use graph::{LinkId, Network, PortId, SwitchId, INVALID_PORT};
pub use hamming::HyperX;
pub use properties::{diameter_under_fault_sequence, DiameterSample, TopologyReport};
pub use rootsel::RootPolicy;
pub use updown::{LinkClass, UpDownEscape};
