//! Mixed-radix coordinate arithmetic for HyperX / Hamming graphs.
//!
//! An `n`-dimensional HyperX with sides `k_1 × … × k_n` labels each switch by
//! a coordinate vector `(x_1, …, x_n)` with `0 ≤ x_i < k_i`. This module maps
//! between those vectors and flat [`SwitchId`](crate::graph::SwitchId)s and
//! provides the Hamming distance, which in a HyperX equals the graph distance.

use serde::{Deserialize, Serialize};

/// A switch coordinate vector. Dimension 0 is the least-significant digit of
/// the flat switch index.
pub type Coordinates = Vec<usize>;

/// A mixed-radix coordinate system with one radix (side) per dimension.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordinateSystem {
    sides: Vec<usize>,
}

impl CoordinateSystem {
    /// Creates a coordinate system with the given sides.
    ///
    /// # Panics
    /// Panics if any side is smaller than 2 (a dimension of side 1 adds no
    /// switches and no links and is almost certainly a configuration error).
    pub fn new(sides: &[usize]) -> Self {
        assert!(!sides.is_empty(), "at least one dimension is required");
        assert!(
            sides.iter().all(|&k| k >= 2),
            "every side must be at least 2, got {sides:?}"
        );
        CoordinateSystem {
            sides: sides.to_vec(),
        }
    }

    /// Creates the regular system `k × k × … × k` with `dims` dimensions.
    pub fn regular(dims: usize, side: usize) -> Self {
        Self::new(&vec![side; dims])
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.sides.len()
    }

    /// Side (radix) of dimension `d`.
    pub fn side(&self, d: usize) -> usize {
        self.sides[d]
    }

    /// All sides.
    pub fn sides(&self) -> &[usize] {
        &self.sides
    }

    /// Total number of switches, i.e. the product of all sides.
    pub fn num_switches(&self) -> usize {
        self.sides.iter().product()
    }

    /// Converts a flat switch index into its coordinate vector.
    pub fn to_coords(&self, mut id: usize) -> Coordinates {
        debug_assert!(id < self.num_switches(), "switch id {id} out of range");
        let mut out = Vec::with_capacity(self.dims());
        for &k in &self.sides {
            out.push(id % k);
            id /= k;
        }
        out
    }

    /// Converts a coordinate vector into its flat switch index.
    ///
    /// # Panics
    /// Panics (in debug builds) if the vector has the wrong length or a
    /// coordinate exceeds its side.
    pub fn to_id(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.dims());
        let mut id = 0usize;
        let mut stride = 1usize;
        for (d, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.sides[d], "coordinate {c} out of range in dim {d}");
            id += c * stride;
            stride *= self.sides[d];
        }
        id
    }

    /// Number of coordinates in which `a` and `b` differ. In a healthy HyperX
    /// this equals the graph distance between the two switches.
    pub fn hamming_distance(&self, a: usize, b: usize) -> usize {
        let ca = self.to_coords(a);
        let cb = self.to_coords(b);
        ca.iter().zip(&cb).filter(|(x, y)| x != y).count()
    }

    /// Returns the switch obtained from `id` by setting dimension `d` to `value`.
    pub fn with_coordinate(&self, id: usize, d: usize, value: usize) -> usize {
        let mut c = self.to_coords(id);
        c[d] = value;
        self.to_id(&c)
    }

    /// The dimensions in which `a` and `b` differ.
    pub fn differing_dimensions(&self, a: usize, b: usize) -> Vec<usize> {
        let ca = self.to_coords(a);
        let cb = self.to_coords(b);
        (0..self.dims()).filter(|&d| ca[d] != cb[d]).collect()
    }

    /// Iterates over every switch id.
    pub fn iter_ids(&self) -> impl Iterator<Item = usize> {
        0..self.num_switches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_regular() {
        let cs = CoordinateSystem::regular(3, 4);
        assert_eq!(cs.num_switches(), 64);
        for id in cs.iter_ids() {
            let c = cs.to_coords(id);
            assert_eq!(cs.to_id(&c), id);
        }
    }

    #[test]
    fn roundtrip_mixed_radix() {
        let cs = CoordinateSystem::new(&[2, 3, 5]);
        assert_eq!(cs.num_switches(), 30);
        for id in cs.iter_ids() {
            assert_eq!(cs.to_id(&cs.to_coords(id)), id);
        }
    }

    #[test]
    fn coordinate_order_is_little_endian() {
        let cs = CoordinateSystem::new(&[4, 4]);
        assert_eq!(cs.to_coords(0), vec![0, 0]);
        assert_eq!(cs.to_coords(1), vec![1, 0]);
        assert_eq!(cs.to_coords(4), vec![0, 1]);
        assert_eq!(cs.to_id(&[3, 2]), 3 + 2 * 4);
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let cs = CoordinateSystem::regular(3, 8);
        let a = cs.to_id(&[1, 2, 3]);
        let b = cs.to_id(&[1, 5, 4]);
        assert_eq!(cs.hamming_distance(a, a), 0);
        assert_eq!(cs.hamming_distance(a, b), 2);
        assert_eq!(cs.hamming_distance(a, cs.to_id(&[0, 0, 0])), 3);
    }

    #[test]
    fn with_coordinate_changes_single_dimension() {
        let cs = CoordinateSystem::regular(2, 16);
        let a = cs.to_id(&[3, 7]);
        let b = cs.with_coordinate(a, 1, 9);
        assert_eq!(cs.to_coords(b), vec![3, 9]);
    }

    #[test]
    fn differing_dimensions_reported() {
        let cs = CoordinateSystem::regular(3, 4);
        let a = cs.to_id(&[0, 1, 2]);
        let b = cs.to_id(&[0, 3, 1]);
        assert_eq!(cs.differing_dimensions(a, b), vec![1, 2]);
        assert!(cs.differing_dimensions(a, a).is_empty());
    }

    #[test]
    #[should_panic]
    fn side_one_rejected() {
        let _ = CoordinateSystem::new(&[4, 1]);
    }
}
