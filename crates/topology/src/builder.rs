//! Incremental construction of [`Network`] instances.

use crate::graph::{Neighbor, Network, SwitchId};

/// Builds a [`Network`] link by link, assigning port numbers in insertion order.
///
/// Topology constructors ([`crate::hamming::HyperX`], [`crate::complete`],
/// [`crate::cartesian`]) use the builder so that port numbering is fully
/// deterministic: ports of a switch are numbered in the order its links were
/// added.
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    ports: Vec<Vec<Option<Neighbor>>>,
}

impl NetworkBuilder {
    /// Starts a builder for a network of `switches` switches and no links.
    pub fn new(switches: usize) -> Self {
        NetworkBuilder {
            ports: vec![Vec::new(); switches],
        }
    }

    /// Number of switches the network will have.
    pub fn num_switches(&self) -> usize {
        self.ports.len()
    }

    /// Adds an undirected link between `x` and `y`, creating one new port at
    /// each endpoint. Returns the pair of port indices `(port_of_x, port_of_y)`.
    ///
    /// # Panics
    /// Panics on self links, out-of-range switches or duplicate links.
    pub fn add_link(&mut self, x: SwitchId, y: SwitchId) -> (usize, usize) {
        assert!(x != y, "self links are not allowed");
        assert!(
            x < self.ports.len() && y < self.ports.len(),
            "switch out of range"
        );
        assert!(
            !self.ports[x].iter().flatten().any(|n| n.switch == y),
            "duplicate link {x}-{y}"
        );
        let px = self.ports[x].len();
        let py = self.ports[y].len();
        self.ports[x].push(Some(Neighbor {
            switch: y,
            reverse_port: py,
        }));
        self.ports[y].push(Some(Neighbor {
            switch: x,
            reverse_port: px,
        }));
        (px, py)
    }

    /// Finalizes the builder into an immutable-shape [`Network`].
    pub fn build(self) -> Network {
        Network::from_ports(self.ports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_path_graph() {
        let mut b = NetworkBuilder::new(4);
        b.add_link(0, 1);
        b.add_link(1, 2);
        b.add_link(2, 3);
        let net = b.build();
        assert_eq!(net.num_links(), 3);
        assert_eq!(net.degree(0), 1);
        assert_eq!(net.degree(1), 2);
        assert!(net.is_connected());
    }

    #[test]
    fn port_numbers_follow_insertion_order() {
        let mut b = NetworkBuilder::new(3);
        let (p01, _) = b.add_link(0, 1);
        let (p02, _) = b.add_link(0, 2);
        assert_eq!(p01, 0);
        assert_eq!(p02, 1);
        let net = b.build();
        assert_eq!(net.neighbor(0, 0).unwrap().switch, 1);
        assert_eq!(net.neighbor(0, 1).unwrap().switch, 2);
    }

    #[test]
    #[should_panic]
    fn rejects_duplicate_links() {
        let mut b = NetworkBuilder::new(3);
        b.add_link(0, 1);
        b.add_link(1, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_self_link() {
        let mut b = NetworkBuilder::new(3);
        b.add_link(1, 1);
    }
}
