//! Breadth-first search distances and all-pairs distance matrices.
//!
//! Every routing mechanism in the paper that survives topology changes
//! (Minimal, Polarized, the SurePath escape subnetwork) recomputes its tables
//! with a BFS after a failure. This module provides that primitive plus a
//! compact all-pairs [`DistanceMatrix`] used by routing tables and by the
//! topology analyses of Figure 1 and Table 3.

use crate::graph::{Network, SwitchId};

/// Distance value meaning "unreachable".
pub const UNREACHABLE: u16 = u16::MAX;

/// Distances from `source` to every switch over alive links.
///
/// Unreachable switches get [`UNREACHABLE`].
pub fn bfs_distances(net: &Network, source: SwitchId) -> Vec<u16> {
    let n = net.num_switches();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = std::collections::VecDeque::with_capacity(n);
    dist[source] = 0;
    queue.push_back(source);
    while let Some(s) = queue.pop_front() {
        let d = dist[s];
        for (_, nb) in net.neighbors(s) {
            if dist[nb.switch] == UNREACHABLE {
                dist[nb.switch] = d + 1;
                queue.push_back(nb.switch);
            }
        }
    }
    dist
}

/// All-pairs shortest-path distances, stored as a flat `n × n` array of `u16`.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u16>,
}

impl DistanceMatrix {
    /// Computes all-pairs distances by running one BFS per switch.
    pub fn compute(net: &Network) -> Self {
        let n = net.num_switches();
        let mut d = Vec::with_capacity(n * n);
        for s in 0..n {
            d.extend(bfs_distances(net, s));
        }
        DistanceMatrix { n, d }
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.n
    }

    /// Distance from `a` to `b` ([`UNREACHABLE`] if disconnected).
    #[inline]
    pub fn get(&self, a: SwitchId, b: SwitchId) -> u16 {
        self.d[a * self.n + b]
    }

    /// The row of distances from `a` to every switch.
    #[inline]
    pub fn row(&self, a: SwitchId) -> &[u16] {
        &self.d[a * self.n..(a + 1) * self.n]
    }

    /// Whether every pair of switches is mutually reachable.
    pub fn is_connected(&self) -> bool {
        !self.d.contains(&UNREACHABLE)
    }

    /// Largest finite distance, or `None` if the network is disconnected.
    pub fn diameter(&self) -> usize {
        if !self.is_connected() {
            return usize::MAX;
        }
        self.d.iter().copied().max().unwrap_or(0) as usize
    }

    /// Like [`diameter`](Self::diameter) but returns `None` when disconnected,
    /// which is how Figure 1 terminates each fault sequence.
    pub fn diameter_checked(&self) -> Option<usize> {
        if self.is_connected() {
            Some(self.d.iter().copied().max().unwrap_or(0) as usize)
        } else {
            None
        }
    }

    /// Mean distance over all ordered pairs of distinct switches.
    ///
    /// Returns `f64::INFINITY` if the network is disconnected.
    pub fn average_distance(&self) -> f64 {
        if !self.is_connected() {
            return f64::INFINITY;
        }
        if self.n < 2 {
            return 0.0;
        }
        let total: u64 = self.d.iter().map(|&x| x as u64).sum();
        total as f64 / (self.n as f64 * (self.n as f64 - 1.0))
    }

    /// Largest distance from switch `s` to any other switch.
    pub fn eccentricity(&self, s: SwitchId) -> u16 {
        self.row(s).iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complete::complete_graph;
    use crate::hamming::HyperX;

    #[test]
    fn bfs_on_complete_graph() {
        let net = complete_graph(6);
        let d = bfs_distances(&net, 2);
        assert_eq!(d[2], 0);
        assert!(d.iter().enumerate().all(|(i, &x)| i == 2 || x == 1));
    }

    #[test]
    fn bfs_reports_unreachable() {
        let mut net = complete_graph(3);
        net.remove_link(0, 1);
        net.remove_link(0, 2);
        let d = bfs_distances(&net, 1);
        assert_eq!(d[0], UNREACHABLE);
        assert_eq!(d[2], 1);
    }

    #[test]
    fn distance_matrix_hyperx_diameter_and_average() {
        // Table 3 of the paper: the 3D HyperX of side 8 has diameter 3 and
        // average distance 2.625; the 2D of side 16 has diameter 2 and 1.8...
        // We verify the exact closed forms on smaller instances and the paper
        // values themselves in the properties module; here a 4x4x4 example.
        let hx = HyperX::regular(3, 4);
        let d = DistanceMatrix::compute(hx.network());
        assert!(d.is_connected());
        assert_eq!(d.diameter(), 3);
        // Average distance of K_k^n: n*(k-1)*k^(n-1) * k^n / (k^n*(k^n-1)) hops
        // summed... easier: expected Hamming distance between distinct vertices.
        let n = 3.0;
        let k = 4.0f64;
        let total_pairs = 64.0 * 63.0;
        let expected_sum = 64.0 * n * (k - 1.0) / k * 64.0; // E[d] over all ordered pairs incl. self
        let expected = expected_sum / total_pairs;
        assert!((d.average_distance() - expected).abs() < 1e-9);
    }

    #[test]
    fn diameter_checked_none_when_disconnected() {
        let mut net = complete_graph(4);
        for x in 1..4 {
            net.remove_link(0, x);
        }
        let d = DistanceMatrix::compute(&net);
        assert_eq!(d.diameter_checked(), None);
        assert_eq!(d.diameter(), usize::MAX);
        assert!(d.average_distance().is_infinite());
    }

    #[test]
    fn eccentricity_of_hyperx_switch() {
        let hx = HyperX::regular(2, 4);
        let d = DistanceMatrix::compute(hx.network());
        for s in 0..hx.num_switches() {
            assert_eq!(d.eccentricity(s), 2);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn row_matches_get() {
        let hx = HyperX::regular(2, 3);
        let d = DistanceMatrix::compute(hx.network());
        for a in 0..9 {
            let row = d.row(a);
            for b in 0..9 {
                assert_eq!(row[b], d.get(a, b));
            }
        }
    }
}
