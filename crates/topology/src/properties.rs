//! Topology-level analyses: Table 3 parameters and the Figure 1 diameter-vs-faults study.

use crate::bfs::DistanceMatrix;
use crate::faults::FaultSet;
use crate::graph::Network;
use crate::hamming::HyperX;
use serde::{Deserialize, Serialize};

/// The topological parameters reported in Table 3 of the paper.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyReport {
    /// Number of switches.
    pub switches: usize,
    /// Switch-to-switch ports per switch.
    pub switch_radix: usize,
    /// Servers attached to each switch (the concentration).
    pub servers_per_switch: usize,
    /// Total switch radix including server ports.
    pub total_radix: usize,
    /// Total number of servers.
    pub total_servers: usize,
    /// Number of switch-to-switch links.
    pub links: usize,
    /// Network diameter.
    pub diameter: usize,
    /// Average switch-to-switch distance over distinct pairs.
    pub average_distance: f64,
}

impl TopologyReport {
    /// Computes the report for a HyperX with the given concentration
    /// (servers per switch). The paper uses a concentration equal to the side.
    pub fn for_hyperx(hx: &HyperX, servers_per_switch: usize) -> Self {
        let d = DistanceMatrix::compute(hx.network());
        TopologyReport {
            switches: hx.num_switches(),
            switch_radix: hx.switch_radix(),
            servers_per_switch,
            total_radix: hx.switch_radix() + servers_per_switch,
            total_servers: hx.num_switches() * servers_per_switch,
            links: hx.network().num_links(),
            diameter: d.diameter(),
            average_distance: d.average_distance(),
        }
    }

    /// Computes the report for an arbitrary network.
    pub fn for_network(net: &Network, servers_per_switch: usize) -> Self {
        let d = DistanceMatrix::compute(net);
        TopologyReport {
            switches: net.num_switches(),
            switch_radix: net.max_ports(),
            servers_per_switch,
            total_radix: net.max_ports() + servers_per_switch,
            total_servers: net.num_switches() * servers_per_switch,
            links: net.num_links(),
            diameter: d.diameter(),
            average_distance: d.average_distance(),
        }
    }
}

/// One point of the Figure 1 study: after applying `faults` random failures,
/// the network has the given diameter (`None` once it disconnects).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiameterSample {
    /// Number of failed links applied so far.
    pub faults: usize,
    /// Diameter of the surviving network, or `None` if disconnected.
    pub diameter: Option<usize>,
}

/// Reproduces one curve of Figure 1: applies the fault sequence incrementally
/// and records the diameter every `step` faults (and at the exact points where
/// the network disconnects or the sequence ends).
///
/// The function stops at the first sample where the network is disconnected,
/// matching the paper ("the network becomes disconnected as the line exits the
/// plot").
pub fn diameter_under_fault_sequence(
    net: &Network,
    sequence: &FaultSet,
    step: usize,
) -> Vec<DiameterSample> {
    assert!(step > 0, "step must be positive");
    let mut scratch = net.clone();
    let mut samples = Vec::new();
    let record = |scratch: &Network, faults: usize, samples: &mut Vec<DiameterSample>| {
        let d = DistanceMatrix::compute(scratch);
        samples.push(DiameterSample {
            faults,
            diameter: d.diameter_checked(),
        });
    };
    record(&scratch, 0, &mut samples);
    for (i, link) in sequence.links().iter().enumerate() {
        scratch.remove_link(link.a, link.b);
        let applied = i + 1;
        if applied % step == 0 || applied == sequence.len() {
            record(&scratch, applied, &mut samples);
            if samples.last().unwrap().diameter.is_none() {
                break;
            }
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn table3_values_for_2d_hyperx() {
        // Table 3, 2D HyperX column: 256 switches, radix 46 (30 + 16 servers),
        // 4096 servers, 3840 links, diameter 2, average distance 1.8...
        let hx = HyperX::regular(2, 16);
        let r = TopologyReport::for_hyperx(&hx, 16);
        assert_eq!(r.switches, 256);
        assert_eq!(r.total_radix, 46);
        assert_eq!(r.servers_per_switch, 16);
        assert_eq!(r.total_servers, 4096);
        assert_eq!(r.links, 3840);
        assert_eq!(r.diameter, 2);
        // Average Hamming distance: 2·(15/16)·256/255 ≈ 1.8824; the paper rounds to 1.8.
        let expected = 2.0 * (15.0 / 16.0) * 256.0 / 255.0;
        assert!((r.average_distance - expected).abs() < 1e-9);
        assert!((r.average_distance - 1.88).abs() < 0.01);
    }

    #[test]
    fn table3_values_for_3d_hyperx() {
        // Table 3, 3D HyperX column: 512 switches, radix 29 (21 + 8 servers),
        // 4096 servers, 5376 links, diameter 3, average distance 2.625.
        let hx = HyperX::regular(3, 8);
        let r = TopologyReport::for_hyperx(&hx, 8);
        assert_eq!(r.switches, 512);
        assert_eq!(r.total_radix, 29);
        assert_eq!(r.total_servers, 4096);
        assert_eq!(r.links, 5376);
        assert_eq!(r.diameter, 3);
        let expected = 3.0 * (7.0 / 8.0) * 512.0 / 511.0;
        assert!((r.average_distance - expected).abs() < 1e-9);
        assert!((r.average_distance - 2.63).abs() < 0.01);
    }

    #[test]
    fn diameter_curve_starts_at_healthy_diameter_and_is_monotone() {
        let hx = HyperX::regular(3, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let seq = FaultSet::random_sequence(hx.network(), 60, &mut rng);
        let samples = diameter_under_fault_sequence(hx.network(), &seq, 10);
        assert_eq!(samples[0].faults, 0);
        assert_eq!(samples[0].diameter, Some(3));
        let mut last = 0usize;
        for s in &samples {
            if let Some(d) = s.diameter {
                assert!(d >= last, "diameter can only grow as faults accumulate");
                last = d;
            }
        }
    }

    #[test]
    fn diameter_curve_stops_after_disconnection() {
        let hx = HyperX::regular(2, 3);
        // Fail every link: the curve must stop at the first disconnected sample.
        let all = FaultSet::from_links(hx.network().healthy_links());
        let samples = diameter_under_fault_sequence(hx.network(), &all, 1);
        assert!(samples.last().unwrap().diameter.is_none());
        // No sample after the disconnected one.
        let disconnected_at = samples.iter().position(|s| s.diameter.is_none()).unwrap();
        assert_eq!(disconnected_at, samples.len() - 1);
    }

    #[test]
    fn report_for_arbitrary_network() {
        let net = crate::complete::complete_graph(33);
        let r = TopologyReport::for_network(&net, 32);
        assert_eq!(r.total_servers, 33 * 32);
        assert_eq!(r.links, 528);
        assert_eq!(r.diameter, 1);
        assert_eq!(r.total_radix, 64);
    }
}
