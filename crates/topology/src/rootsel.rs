//! Escape-subnetwork root selection policies.
//!
//! The paper builds its escape subnetwork from "an arbitrary switch … selected
//! as root" (§3.2) and deliberately stresses SurePath by placing the root
//! *inside* the fault shapes of Figures 8 and 9. Its §6 analysis of the Star
//! configuration then notes that "some of the issues can be addressed by
//! avoiding to choose a switch with many faulty links as the root of the
//! escape subnetwork". This module implements that advice as a family of
//! selectable policies, used by the root-placement ablation benchmark.

use crate::bfs::{bfs_distances, DistanceMatrix, UNREACHABLE};
use crate::graph::{Network, SwitchId};
use serde::{Deserialize, Serialize};

/// A policy for picking the root of the Up/Down escape subnetwork.
///
/// ```
/// use hyperx_topology::{FaultSet, FaultShape, HyperX, RootPolicy};
///
/// // Star faults leave the centre with 3 links; the degree policy avoids it.
/// let hx = HyperX::regular(3, 4);
/// let shape = FaultShape::Cross { center: vec![0, 0, 0], margin: 1 };
/// let mut net = hx.network().clone();
/// FaultSet::from_shape(&shape, &hx).apply(&mut net);
/// let root = RootPolicy::MaxAliveDegree.select(&net);
/// assert_ne!(root, hx.switch_id(&[0, 0, 0]));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RootPolicy {
    /// Switch 0, the paper's implicit default for the healthy network.
    First,
    /// A fixed, explicitly chosen switch.
    Fixed(SwitchId),
    /// The switch with the most alive links (ties broken by the lowest id);
    /// the direct implementation of the paper's "avoid a switch with many
    /// faulty links" advice.
    MaxAliveDegree,
    /// The switch with the smallest eccentricity over alive links (a graph
    /// center), which minimises the worst-case Up/Down path length.
    MinEccentricity,
    /// The switch minimising the sum of distances to every other switch
    /// (a graph median), which minimises the *average* Up/Down path length.
    MinTotalDistance,
}

impl RootPolicy {
    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            RootPolicy::First => "first".to_string(),
            RootPolicy::Fixed(s) => format!("fixed({s})"),
            RootPolicy::MaxAliveDegree => "max-alive-degree".to_string(),
            RootPolicy::MinEccentricity => "min-eccentricity".to_string(),
            RootPolicy::MinTotalDistance => "min-total-distance".to_string(),
        }
    }

    /// Selects the root over the alive links of `net`.
    ///
    /// # Panics
    /// Panics if the network has no switches, or if a [`RootPolicy::Fixed`]
    /// switch is out of range.
    pub fn select(&self, net: &Network) -> SwitchId {
        let n = net.num_switches();
        assert!(n > 0, "cannot select a root in an empty network");
        match self {
            RootPolicy::First => 0,
            RootPolicy::Fixed(s) => {
                assert!(
                    *s < n,
                    "fixed root {s} out of range (network has {n} switches)"
                );
                *s
            }
            RootPolicy::MaxAliveDegree => (0..n)
                .max_by_key(|&s| (net.degree(s), std::cmp::Reverse(s)))
                .expect("non-empty network"),
            RootPolicy::MinEccentricity => select_by_distance_score(net, |dist| {
                dist.iter()
                    .map(|&d| if d == UNREACHABLE { u64::MAX } else { d as u64 })
                    .max()
                    .unwrap_or(0)
            }),
            RootPolicy::MinTotalDistance => select_by_distance_score(net, |dist| {
                dist.iter().fold(0u64, |acc, &d| {
                    if d == UNREACHABLE {
                        u64::MAX
                    } else {
                        acc.saturating_add(d as u64)
                    }
                })
            }),
        }
    }

    /// Selects the root using a precomputed all-pairs distance matrix (avoids
    /// recomputing BFS when the caller already has one).
    pub fn select_with_distances(&self, net: &Network, dm: &DistanceMatrix) -> SwitchId {
        match self {
            RootPolicy::MinEccentricity => (0..net.num_switches())
                .min_by_key(|&s| (dm.eccentricity(s), s))
                .expect("non-empty network"),
            RootPolicy::MinTotalDistance => (0..net.num_switches())
                .min_by_key(|&s| {
                    let total: u64 = dm.row(s).iter().map(|&d| d as u64).sum();
                    (total, s)
                })
                .expect("non-empty network"),
            _ => self.select(net),
        }
    }

    /// The policies compared by the root-placement ablation.
    pub fn ablation_lineup() -> [RootPolicy; 4] {
        [
            RootPolicy::First,
            RootPolicy::MaxAliveDegree,
            RootPolicy::MinEccentricity,
            RootPolicy::MinTotalDistance,
        ]
    }
}

/// Picks the switch minimising `score(bfs distances from that switch)`, ties
/// broken by the lowest switch id.
fn select_by_distance_score<F>(net: &Network, score: F) -> SwitchId
where
    F: Fn(&[u16]) -> u64,
{
    let mut best = 0usize;
    let mut best_score = u64::MAX;
    for s in 0..net.num_switches() {
        let dist = bfs_distances(net, s);
        let sc = score(&dist);
        if sc < best_score {
            best_score = sc;
            best = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultSet, FaultShape};
    use crate::hamming::HyperX;

    #[test]
    fn first_and_fixed_policies() {
        let hx = HyperX::regular(2, 4);
        assert_eq!(RootPolicy::First.select(hx.network()), 0);
        assert_eq!(RootPolicy::Fixed(7).select(hx.network()), 7);
    }

    #[test]
    #[should_panic]
    fn fixed_out_of_range_rejected() {
        let hx = HyperX::regular(2, 4);
        let _ = RootPolicy::Fixed(100).select(hx.network());
    }

    #[test]
    fn healthy_hyperx_is_symmetric_so_every_policy_is_valid() {
        // In a vertex-transitive healthy network every switch has the same
        // degree and eccentricity; the policies must still return a valid id.
        let hx = HyperX::regular(2, 4);
        for policy in RootPolicy::ablation_lineup() {
            let root = policy.select(hx.network());
            assert!(root < hx.num_switches());
        }
    }

    #[test]
    fn max_alive_degree_avoids_the_faulted_star_center() {
        // Star faults around (0,0,0): the center keeps only 3 alive links, so
        // the policy must not pick it (the paper's §6 advice).
        let hx = HyperX::regular(3, 4);
        let center = hx.switch_id(&[0, 0, 0]);
        let shape = FaultShape::Cross {
            center: vec![0, 0, 0],
            margin: 1,
        };
        let mut net = hx.network().clone();
        FaultSet::from_shape(&shape, &hx).apply(&mut net);
        let root = RootPolicy::MaxAliveDegree.select(&net);
        assert_ne!(root, center);
        assert!(net.degree(root) > net.degree(center));
    }

    #[test]
    fn min_eccentricity_prefers_undamaged_switches() {
        // Remove a row: the surviving center candidates are outside the row
        // (their eccentricity stays 2 while row members reach 3).
        let hx = HyperX::regular(2, 4);
        let shape = FaultShape::Row {
            along_dim: 0,
            at: vec![0, 0],
        };
        let mut net = hx.network().clone();
        FaultSet::from_shape(&shape, &hx).apply(&mut net);
        let root = RootPolicy::MinEccentricity.select(&net);
        let coords = hx.switch_coords(root);
        assert_ne!(coords[1], 0, "root must not sit on the removed row");
    }

    #[test]
    fn select_with_distances_agrees_with_select() {
        let hx = HyperX::regular(2, 4);
        let mut net = hx.network().clone();
        let shape = FaultShape::Cross {
            center: vec![1, 1],
            margin: 1,
        };
        FaultSet::from_shape(&shape, &hx).apply(&mut net);
        let dm = DistanceMatrix::compute(&net);
        for policy in RootPolicy::ablation_lineup() {
            assert_eq!(
                policy.select(&net),
                policy.select_with_distances(&net, &dm),
                "policy {}",
                policy.name()
            );
        }
    }

    #[test]
    fn min_total_distance_picks_a_median() {
        // Path-like network: 0-1-2-3-4 (built by faulting a complete graph).
        let mut net = crate::complete::complete_graph(5);
        for a in 0..5usize {
            for b in (a + 1)..5 {
                if b != a + 1 {
                    net.remove_link(a, b);
                }
            }
        }
        assert_eq!(RootPolicy::MinTotalDistance.select(&net), 2);
        assert_eq!(RootPolicy::MinEccentricity.select(&net), 2);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RootPolicy::First.name(), "first");
        assert_eq!(RootPolicy::Fixed(3).name(), "fixed(3)");
        assert_eq!(RootPolicy::MaxAliveDegree.name(), "max-alive-degree");
        assert_eq!(RootPolicy::MinEccentricity.name(), "min-eccentricity");
        assert_eq!(RootPolicy::MinTotalDistance.name(), "min-total-distance");
    }
}
