//! Switch-level network graph with stable port numbering and link faults.
//!
//! A [`Network`] is an undirected graph of switches. Every switch owns a
//! fixed array of *ports*; port numbering is assigned at construction time
//! and never changes, even when links fail. A failed link simply leaves its
//! two ports dangling ([`Network::neighbor`] returns `None`), which mirrors
//! how a real deployment behaves: the cable is dead but the switch ports
//! still exist.

use serde::{Deserialize, Serialize};

/// Index of a switch in the network, in `0..num_switches()`.
pub type SwitchId = usize;

/// Index of a port inside a switch, in `0..ports(switch)`.
pub type PortId = usize;

/// Sentinel used by routing tables for "no port".
pub const INVALID_PORT: PortId = usize::MAX;

/// Canonical identifier of an undirected switch-to-switch link.
///
/// HyperX networks (and every topology built in this crate) have no parallel
/// links, so the unordered pair of endpoints identifies a link uniquely.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct LinkId {
    /// Smaller endpoint.
    pub a: SwitchId,
    /// Larger endpoint.
    pub b: SwitchId,
}

impl LinkId {
    /// Builds the canonical (sorted) link identifier for the pair `(x, y)`.
    ///
    /// # Panics
    /// Panics if `x == y`; self-links do not exist.
    pub fn new(x: SwitchId, y: SwitchId) -> Self {
        assert!(x != y, "self links are not allowed");
        if x < y {
            LinkId { a: x, b: y }
        } else {
            LinkId { a: y, b: x }
        }
    }

    /// Returns the endpoint different from `s`.
    ///
    /// # Panics
    /// Panics if `s` is not an endpoint of this link.
    pub fn other(&self, s: SwitchId) -> SwitchId {
        if s == self.a {
            self.b
        } else if s == self.b {
            self.a
        } else {
            panic!("switch {s} is not an endpoint of link {self:?}")
        }
    }
}

/// The far side of a live port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Neighbor {
    /// Switch at the other end of the link.
    pub switch: SwitchId,
    /// Port on that switch that points back to us.
    pub reverse_port: PortId,
}

/// An undirected switch-level network with stable port numbering.
///
/// The structure is mutable only through fault operations
/// ([`remove_link`](Network::remove_link) / [`restore_link`](Network::restore_link));
/// the set of switches and the port layout are fixed at construction.
#[derive(Clone, Debug)]
pub struct Network {
    /// `ports[s][p]` is the neighbor reachable through port `p` of switch `s`,
    /// or `None` if the link through that port has failed (or never existed).
    ports: Vec<Vec<Option<Neighbor>>>,
    /// What each port was connected to in the healthy network. Used to undo faults.
    healthy: Vec<Vec<Option<Neighbor>>>,
    /// Number of currently alive links.
    alive_links: usize,
    /// Number of links in the healthy network.
    healthy_links: usize,
}

impl Network {
    /// Builds a network from per-switch port tables. Intended to be called by
    /// [`crate::builder::NetworkBuilder`]; prefer the topology constructors.
    pub(crate) fn from_ports(ports: Vec<Vec<Option<Neighbor>>>) -> Self {
        let links = ports
            .iter()
            .enumerate()
            .flat_map(|(s, ps)| {
                ps.iter()
                    .filter_map(move |n| n.as_ref().map(|n| (s, n.switch)))
            })
            .filter(|(s, t)| s < t)
            .count();
        Network {
            healthy: ports.clone(),
            ports,
            alive_links: links,
            healthy_links: links,
        }
    }

    /// Number of switches in the network.
    pub fn num_switches(&self) -> usize {
        self.ports.len()
    }

    /// Number of ports of switch `s` (alive or not).
    pub fn ports(&self, s: SwitchId) -> usize {
        self.ports[s].len()
    }

    /// Largest switch-to-switch port count across all switches.
    pub fn max_ports(&self) -> usize {
        self.ports.iter().map(|p| p.len()).max().unwrap_or(0)
    }

    /// Number of currently alive ports (live links) of switch `s`.
    pub fn degree(&self, s: SwitchId) -> usize {
        self.ports[s].iter().filter(|n| n.is_some()).count()
    }

    /// The neighbor on the other side of port `p` of switch `s`, if the link is alive.
    pub fn neighbor(&self, s: SwitchId, p: PortId) -> Option<Neighbor> {
        self.ports[s][p]
    }

    /// The neighbor this port connected to in the healthy network, dead or alive.
    pub fn healthy_neighbor(&self, s: SwitchId, p: PortId) -> Option<Neighbor> {
        self.healthy[s][p]
    }

    /// Iterates over the alive `(port, neighbor)` pairs of switch `s`.
    pub fn neighbors(&self, s: SwitchId) -> impl Iterator<Item = (PortId, Neighbor)> + '_ {
        self.ports[s]
            .iter()
            .enumerate()
            .filter_map(|(p, n)| n.map(|n| (p, n)))
    }

    /// Finds the port of `s` whose alive link leads to `t`, if any.
    pub fn port_towards(&self, s: SwitchId, t: SwitchId) -> Option<PortId> {
        self.neighbors(s)
            .find(|(_, n)| n.switch == t)
            .map(|(p, _)| p)
    }

    /// Whether the link between `x` and `y` is currently alive.
    pub fn has_link(&self, x: SwitchId, y: SwitchId) -> bool {
        self.port_towards(x, y).is_some()
    }

    /// Whether the link between `x` and `y` exists in the healthy network.
    pub fn had_link(&self, x: SwitchId, y: SwitchId) -> bool {
        self.healthy[x].iter().flatten().any(|n| n.switch == y)
    }

    /// Number of currently alive links.
    pub fn num_links(&self) -> usize {
        self.alive_links
    }

    /// Number of links the healthy network has.
    pub fn num_healthy_links(&self) -> usize {
        self.healthy_links
    }

    /// Number of links currently marked as failed.
    pub fn num_faults(&self) -> usize {
        self.healthy_links - self.alive_links
    }

    /// All currently alive links, each reported once.
    pub fn links(&self) -> Vec<LinkId> {
        let mut out = Vec::with_capacity(self.alive_links);
        for s in 0..self.num_switches() {
            for (_, n) in self.neighbors(s) {
                if s < n.switch {
                    out.push(LinkId::new(s, n.switch));
                }
            }
        }
        out
    }

    /// All links of the healthy network, each reported once.
    pub fn healthy_links(&self) -> Vec<LinkId> {
        let mut out = Vec::with_capacity(self.healthy_links);
        for s in 0..self.num_switches() {
            for n in self.healthy[s].iter().flatten() {
                if s < n.switch {
                    out.push(LinkId::new(s, n.switch));
                }
            }
        }
        out
    }

    /// Marks the link between `x` and `y` as failed.
    ///
    /// Returns `true` if the link was alive and has now been removed, `false`
    /// if it was already failed or never existed.
    pub fn remove_link(&mut self, x: SwitchId, y: SwitchId) -> bool {
        let Some(px) = self.port_towards(x, y) else {
            return false;
        };
        let py = self.ports[x][px]
            .expect("port_towards returned alive port")
            .reverse_port;
        debug_assert_eq!(self.ports[y][py].map(|n| n.switch), Some(x));
        self.ports[x][px] = None;
        self.ports[y][py] = None;
        self.alive_links -= 1;
        true
    }

    /// Restores a previously failed link between `x` and `y`.
    ///
    /// Returns `true` if the link existed in the healthy network and was
    /// failed, `false` otherwise.
    pub fn restore_link(&mut self, x: SwitchId, y: SwitchId) -> bool {
        if self.has_link(x, y) || !self.had_link(x, y) {
            return false;
        }
        let px = self.healthy[x]
            .iter()
            .position(|n| n.map(|n| n.switch) == Some(y))
            .expect("had_link checked");
        let n = self.healthy[x][px].unwrap();
        self.ports[x][px] = Some(n);
        self.ports[n.switch][n.reverse_port] = Some(Neighbor {
            switch: x,
            reverse_port: px,
        });
        self.alive_links += 1;
        true
    }

    /// Restores every failed link, returning the network to its healthy state.
    pub fn heal(&mut self) {
        self.ports = self.healthy.clone();
        self.alive_links = self.healthy_links;
    }

    /// Whether every switch can reach every other switch over alive links.
    pub fn is_connected(&self) -> bool {
        let n = self.num_switches();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1usize;
        while let Some(s) = stack.pop() {
            for (_, nb) in self.neighbors(s) {
                if !seen[nb.switch] {
                    seen[nb.switch] = true;
                    count += 1;
                    stack.push(nb.switch);
                }
            }
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn triangle() -> Network {
        let mut b = NetworkBuilder::new(3);
        b.add_link(0, 1);
        b.add_link(1, 2);
        b.add_link(2, 0);
        b.build()
    }

    #[test]
    fn link_id_is_canonical() {
        assert_eq!(LinkId::new(3, 1), LinkId::new(1, 3));
        assert_eq!(LinkId::new(1, 3).other(1), 3);
        assert_eq!(LinkId::new(1, 3).other(3), 1);
    }

    #[test]
    #[should_panic]
    fn link_id_rejects_self_link() {
        let _ = LinkId::new(2, 2);
    }

    #[test]
    #[should_panic]
    fn link_id_other_rejects_non_endpoint() {
        let _ = LinkId::new(1, 3).other(2);
    }

    #[test]
    fn triangle_basics() {
        let net = triangle();
        assert_eq!(net.num_switches(), 3);
        assert_eq!(net.num_links(), 3);
        assert_eq!(net.degree(0), 2);
        assert!(net.has_link(0, 1));
        assert!(net.is_connected());
        assert_eq!(net.links().len(), 3);
    }

    #[test]
    fn ports_are_symmetric() {
        let net = triangle();
        for s in 0..3 {
            for (p, nb) in net.neighbors(s) {
                let back = net.neighbor(nb.switch, nb.reverse_port).unwrap();
                assert_eq!(back.switch, s);
                assert_eq!(back.reverse_port, p);
            }
        }
    }

    #[test]
    fn remove_and_restore_link() {
        let mut net = triangle();
        assert!(net.remove_link(0, 1));
        assert!(!net.remove_link(0, 1), "double removal must be a no-op");
        assert_eq!(net.num_links(), 2);
        assert_eq!(net.num_faults(), 1);
        assert!(!net.has_link(0, 1));
        assert!(net.had_link(0, 1));
        assert!(
            net.is_connected(),
            "triangle minus one edge is still connected"
        );
        assert!(net.restore_link(0, 1));
        assert!(!net.restore_link(0, 1));
        assert_eq!(net.num_links(), 3);
        assert!(net.has_link(0, 1));
    }

    #[test]
    fn disconnection_detected() {
        let mut net = triangle();
        net.remove_link(0, 1);
        net.remove_link(0, 2);
        assert!(!net.is_connected());
        net.heal();
        assert!(net.is_connected());
        assert_eq!(net.num_links(), 3);
    }

    #[test]
    fn healthy_links_unaffected_by_faults() {
        let mut net = triangle();
        net.remove_link(1, 2);
        assert_eq!(net.healthy_links().len(), 3);
        assert_eq!(net.links().len(), 2);
        assert_eq!(net.num_healthy_links(), 3);
    }

    #[test]
    fn port_towards_missing_link() {
        let net = triangle();
        assert_eq!(net.port_towards(0, 0), None);
        let mut net = net;
        net.remove_link(0, 1);
        assert_eq!(net.port_towards(0, 1), None);
    }
}
