//! Link-fault models: random fault sequences and the geometric fault shapes
//! of the paper (Row, Subplane/Subcube, Cross/Star).
//!
//! Section 6 of the paper evaluates SurePath under two fault scenarios:
//!
//! 1. *Random faults* — a sequence of uniformly random link failures applied
//!    incrementally (Figures 1 and 6).
//! 2. *Geometric fault shapes* — all links inside a sub-structure fail at
//!    once: a full row (a `K_k`), a subplane/subcube (a smaller Hamming
//!    subgraph) or a cross/star through a chosen center with a margin that
//!    keeps the center connected (Figures 7, 8 and 9).

use crate::coordinates::Coordinates;
use crate::graph::{LinkId, Network};
use crate::hamming::HyperX;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A geometric set of faulty links in a HyperX, as used by Figures 7–9.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultShape {
    /// All links of the row through `at` along dimension `along_dim` fail.
    /// The row induces a complete graph `K_k`, so `k·(k−1)/2` links fail
    /// (120 in the paper's 2D network, 28 in its 3D network).
    Row {
        /// Dimension the row runs along.
        along_dim: usize,
        /// Any switch of the row (its coordinate along `along_dim` is irrelevant).
        at: Coordinates,
    },
    /// All links internal to the sub-Hamming-graph spanning `size` consecutive
    /// coordinate values per dimension starting at `low` fail. With `size = 5`
    /// in 2D this is the paper's *Subplane* (a `K₅²`, 100 links); with
    /// `size = 3` in 3D it is the *Subcube* (a `K₃³`, 81 links).
    Subgrid {
        /// Lowest corner of the sub-grid.
        low: Coordinates,
        /// Number of coordinate values per dimension.
        size: usize,
    },
    /// For every dimension, the complete subgraph over the `k − margin` row
    /// switches through `center` (always including the center itself) fails.
    /// The center keeps exactly `margin` live links per dimension.
    ///
    /// With `margin = 5` in the paper's 2D network this is the *Cross*
    /// (2·C(11,2) = 110 links, center keeps 10 live links); with `margin = 1`
    /// in its 3D network it is the *Star* (3·C(7,2) = 63 links, center keeps
    /// only 3 live links).
    Cross {
        /// Intersection switch of the arms.
        center: Coordinates,
        /// Switches per dimension excluded from the failure.
        margin: usize,
    },
}

impl FaultShape {
    /// The switches whose pairwise links this shape removes, grouped by the
    /// complete subgraphs the shape is made of.
    pub fn switch_groups(&self, hx: &HyperX) -> Vec<Vec<usize>> {
        match self {
            FaultShape::Row { along_dim, at } => {
                let d = *along_dim;
                assert!(d < hx.dims(), "row dimension out of range");
                let base = hx.switch_id(at);
                vec![(0..hx.side(d))
                    .map(|v| hx.coords().with_coordinate(base, d, v))
                    .collect()]
            }
            FaultShape::Subgrid { low, size } => {
                assert_eq!(low.len(), hx.dims());
                for (d, &l) in low.iter().enumerate() {
                    assert!(
                        l + size <= hx.side(d),
                        "subgrid does not fit in dimension {d}"
                    );
                }
                // Every row segment of the sub-grid, in every dimension, forms
                // a complete subgraph among the selected switches.
                let mut groups = Vec::new();
                let total: usize = (0..hx.dims()).map(|_| *size).product();
                let mut members = Vec::with_capacity(total);
                // Enumerate the switches of the sub-grid.
                let mut idx = vec![0usize; hx.dims()];
                loop {
                    let coords: Coordinates =
                        idx.iter().zip(low.iter()).map(|(i, l)| i + l).collect();
                    members.push(hx.switch_id(&coords));
                    // advance mixed-radix counter
                    let mut d = 0;
                    loop {
                        if d == hx.dims() {
                            break;
                        }
                        idx[d] += 1;
                        if idx[d] < *size {
                            break;
                        }
                        idx[d] = 0;
                        d += 1;
                    }
                    if d == hx.dims() {
                        break;
                    }
                }
                // For each dimension, group the members by their remaining coordinates.
                for d in 0..hx.dims() {
                    use std::collections::HashMap;
                    let mut by_rest: HashMap<Vec<usize>, Vec<usize>> = HashMap::new();
                    for &s in &members {
                        let mut c = hx.switch_coords(s);
                        c[d] = 0;
                        by_rest.entry(c).or_default().push(s);
                    }
                    groups.extend(by_rest.into_values());
                }
                groups
            }
            FaultShape::Cross { center, margin } => {
                let c = hx.switch_id(center);
                let mut groups = Vec::new();
                for d in 0..hx.dims() {
                    let k = hx.side(d);
                    assert!(
                        *margin < k,
                        "margin {margin} leaves no switches in dimension {d}"
                    );
                    let own = hx.switch_coords(c)[d];
                    // The arm keeps the center and the (k - margin - 1) switches
                    // with the smallest positive cyclic offset from the center.
                    let arm: Vec<usize> = (0..k - *margin)
                        .map(|off| hx.coords().with_coordinate(c, d, (own + off) % k))
                        .collect();
                    groups.push(arm);
                }
                groups
            }
        }
    }

    /// Every link removed by this shape, each reported once.
    pub fn links(&self, hx: &HyperX) -> Vec<LinkId> {
        let mut set = std::collections::BTreeSet::new();
        for group in self.switch_groups(hx) {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    if hx.network().had_link(a, b) {
                        set.insert(LinkId::new(a, b));
                    }
                }
            }
        }
        set.into_iter().collect()
    }
}

/// An ordered collection of faulty links that can be applied to a [`Network`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    links: Vec<LinkId>,
}

impl FaultSet {
    /// An empty fault set (healthy network).
    pub fn empty() -> Self {
        FaultSet { links: Vec::new() }
    }

    /// A fault set over an explicit list of links.
    pub fn from_links(links: Vec<LinkId>) -> Self {
        FaultSet { links }
    }

    /// The faults produced by a geometric shape.
    pub fn from_shape(shape: &FaultShape, hx: &HyperX) -> Self {
        FaultSet {
            links: shape.links(hx),
        }
    }

    /// Every healthy link incident to any of the given switches: the link-level
    /// footprint of whole-switch failures.
    ///
    /// The paper's evaluation removes links rather than switches (its servers
    /// always stay attached), but §1 motivates the problem with both "link or
    /// switch failures"; this constructor covers the switch case so the same
    /// machinery can model it.
    pub fn from_switch_failures(net: &Network, switches: &[usize]) -> Self {
        let mut set = std::collections::BTreeSet::new();
        for &s in switches {
            assert!(s < net.num_switches(), "switch {s} out of range");
            for p in 0..net.ports(s) {
                if let Some(nb) = net.healthy_neighbor(s, p) {
                    set.insert(LinkId::new(s, nb.switch));
                }
            }
        }
        FaultSet {
            links: set.into_iter().collect(),
        }
    }

    /// `count` uniformly random distinct switch failures, expressed as the set
    /// of their incident links.
    pub fn random_switch_failures<R: Rng>(net: &Network, count: usize, rng: &mut R) -> Self {
        assert!(
            count <= net.num_switches(),
            "cannot fail {count} switches, only {} exist",
            net.num_switches()
        );
        let mut switches: Vec<usize> = (0..net.num_switches()).collect();
        switches.shuffle(rng);
        switches.truncate(count);
        Self::from_switch_failures(net, &switches)
    }

    /// A uniformly random sequence of `count` distinct healthy links.
    ///
    /// The sequence order matters: Figures 1 and 6 apply prefixes of a single
    /// sequence to show the incremental effect of each extra fault.
    pub fn random_sequence<R: Rng>(net: &Network, count: usize, rng: &mut R) -> Self {
        let mut links = net.healthy_links();
        assert!(
            count <= links.len(),
            "cannot fail {count} links, only {} exist",
            links.len()
        );
        links.shuffle(rng);
        links.truncate(count);
        FaultSet { links }
    }

    /// Like [`random_sequence`](Self::random_sequence) but skips any fault that
    /// would disconnect the network, so the result always leaves the network
    /// connected. Returns fewer than `count` faults if connectivity cannot be
    /// preserved otherwise.
    pub fn random_connected_sequence<R: Rng>(net: &Network, count: usize, rng: &mut R) -> Self {
        let mut scratch = net.clone();
        let mut candidates = scratch.links();
        candidates.shuffle(rng);
        let mut chosen = Vec::with_capacity(count);
        for link in candidates {
            if chosen.len() == count {
                break;
            }
            if !scratch.remove_link(link.a, link.b) {
                continue;
            }
            if scratch.is_connected() {
                chosen.push(link);
            } else {
                scratch.restore_link(link.a, link.b);
            }
        }
        FaultSet { links: chosen }
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The faulty links, in application order.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// The prefix of the first `count` faults.
    pub fn prefix(&self, count: usize) -> FaultSet {
        FaultSet {
            links: self.links[..count.min(self.links.len())].to_vec(),
        }
    }

    /// Removes every link of the set from `net`. Returns how many links were
    /// actually alive and got removed.
    pub fn apply(&self, net: &mut Network) -> usize {
        self.links
            .iter()
            .filter(|l| net.remove_link(l.a, l.b))
            .count()
    }

    /// Restores every link of the set in `net`. Returns how many were restored.
    pub fn revert(&self, net: &mut Network) -> usize {
        self.links
            .iter()
            .filter(|l| net.restore_link(l.a, l.b))
            .count()
    }

    /// Appends another fault set (duplicates are kept; `apply` tolerates them).
    pub fn extend(&mut self, other: &FaultSet) {
        self.links.extend_from_slice(&other.links);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xFA17)
    }

    #[test]
    fn row_2d_removes_120_links() {
        let hx = HyperX::regular(2, 16);
        let shape = FaultShape::Row {
            along_dim: 0,
            at: vec![0, 7],
        };
        assert_eq!(shape.links(&hx).len(), 120);
    }

    #[test]
    fn row_3d_removes_28_links() {
        let hx = HyperX::regular(3, 8);
        let shape = FaultShape::Row {
            along_dim: 1,
            at: vec![3, 0, 5],
        };
        assert_eq!(shape.links(&hx).len(), 28);
    }

    #[test]
    fn subplane_2d_removes_100_links() {
        let hx = HyperX::regular(2, 16);
        let shape = FaultShape::Subgrid {
            low: vec![4, 4],
            size: 5,
        };
        assert_eq!(shape.links(&hx).len(), 100);
    }

    #[test]
    fn subcube_3d_removes_81_links() {
        let hx = HyperX::regular(3, 8);
        let shape = FaultShape::Subgrid {
            low: vec![2, 2, 2],
            size: 3,
        };
        assert_eq!(shape.links(&hx).len(), 81);
    }

    #[test]
    fn cross_2d_removes_110_links_and_keeps_center_connected() {
        let hx = HyperX::regular(2, 16);
        let center = vec![8usize, 8usize];
        let shape = FaultShape::Cross {
            center: center.clone(),
            margin: 5,
        };
        let links = shape.links(&hx);
        assert_eq!(links.len(), 110);
        let mut net = hx.network().clone();
        FaultSet::from_links(links).apply(&mut net);
        let c = hx.switch_id(&center);
        assert_eq!(
            net.degree(c),
            10,
            "center must keep margin live links per dimension"
        );
        assert!(net.is_connected());
    }

    #[test]
    fn star_3d_removes_63_links_and_leaves_root_3_links() {
        let hx = HyperX::regular(3, 8);
        let center = vec![0usize, 0, 0];
        let shape = FaultShape::Cross {
            center: center.clone(),
            margin: 1,
        };
        let links = shape.links(&hx);
        assert_eq!(links.len(), 63);
        let mut net = hx.network().clone();
        FaultSet::from_links(links).apply(&mut net);
        assert_eq!(net.degree(hx.switch_id(&center)), 3);
        assert!(net.is_connected());
    }

    #[test]
    fn random_sequence_has_distinct_links() {
        let hx = HyperX::regular(2, 8);
        let f = FaultSet::random_sequence(hx.network(), 50, &mut rng());
        assert_eq!(f.len(), 50);
        let mut sorted = f.links().to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    fn apply_and_revert_are_inverse() {
        let hx = HyperX::regular(2, 8);
        let mut net = hx.network().clone();
        let healthy_links = net.num_links();
        let f = FaultSet::random_sequence(&net, 30, &mut rng());
        assert_eq!(f.apply(&mut net), 30);
        assert_eq!(net.num_links(), healthy_links - 30);
        assert_eq!(f.revert(&mut net), 30);
        assert_eq!(net.num_links(), healthy_links);
    }

    #[test]
    fn prefix_truncates() {
        let hx = HyperX::regular(2, 8);
        let f = FaultSet::random_sequence(hx.network(), 40, &mut rng());
        assert_eq!(f.prefix(10).len(), 10);
        assert_eq!(f.prefix(100).len(), 40);
        assert_eq!(f.prefix(10).links(), &f.links()[..10]);
    }

    #[test]
    fn connected_sequence_preserves_connectivity() {
        let hx = HyperX::regular(2, 4);
        let mut net = hx.network().clone();
        let f = FaultSet::random_connected_sequence(&net, 20, &mut rng());
        f.apply(&mut net);
        assert!(net.is_connected());
    }

    #[test]
    fn switch_failure_removes_all_incident_links() {
        let hx = HyperX::regular(2, 4);
        let s = hx.switch_id(&[1, 2]);
        let f = FaultSet::from_switch_failures(hx.network(), &[s]);
        assert_eq!(f.len(), hx.switch_radix());
        let mut net = hx.network().clone();
        f.apply(&mut net);
        assert_eq!(net.degree(s), 0);
        // The rest of the network must stay connected (k ≥ 3 Hamming graphs
        // survive a single switch loss among the remaining switches).
        let reachable = {
            let mut seen = vec![false; net.num_switches()];
            let start = (0..net.num_switches()).find(|&x| x != s).unwrap();
            let mut stack = vec![start];
            seen[start] = true;
            let mut count = 1;
            while let Some(x) = stack.pop() {
                for (_, nb) in net.neighbors(x) {
                    if !seen[nb.switch] {
                        seen[nb.switch] = true;
                        count += 1;
                        stack.push(nb.switch);
                    }
                }
            }
            count
        };
        assert_eq!(reachable, net.num_switches() - 1);
    }

    #[test]
    fn overlapping_switch_failures_do_not_double_count_links() {
        let hx = HyperX::regular(2, 4);
        let a = hx.switch_id(&[0, 0]);
        let b = hx.switch_id(&[1, 0]); // adjacent to a: they share one link
        let f = FaultSet::from_switch_failures(hx.network(), &[a, b]);
        assert_eq!(f.len(), 2 * hx.switch_radix() - 1);
    }

    #[test]
    fn random_switch_failures_respect_count() {
        let hx = HyperX::regular(2, 8);
        let f = FaultSet::random_switch_failures(hx.network(), 3, &mut rng());
        let mut net = hx.network().clone();
        f.apply(&mut net);
        let isolated = (0..net.num_switches())
            .filter(|&s| net.degree(s) == 0)
            .count();
        assert_eq!(isolated, 3);
    }

    #[test]
    #[should_panic]
    fn switch_failure_out_of_range_rejected() {
        let hx = HyperX::regular(2, 4);
        let _ = FaultSet::from_switch_failures(hx.network(), &[1000]);
    }

    #[test]
    fn double_apply_is_tolerated() {
        let hx = HyperX::regular(2, 4);
        let mut net = hx.network().clone();
        let f = FaultSet::random_sequence(&net, 5, &mut rng());
        assert_eq!(f.apply(&mut net), 5);
        assert_eq!(f.apply(&mut net), 0);
    }
}
