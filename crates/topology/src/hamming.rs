//! HyperX (Hamming graph) topology.
//!
//! An `n`-dimensional HyperX with sides `k_1 × … × k_n` has one switch per
//! coordinate vector and a link between every pair of switches whose
//! coordinates differ in exactly one position (Hamming distance 1). The
//! graph is the Cartesian product of complete graphs `K_{k_1} □ … □ K_{k_n}`.
//!
//! Port layout is *dimension-major*: the ports of a switch are grouped by
//! dimension, and within a dimension ordered by the target coordinate
//! (skipping the switch's own coordinate). This layout lets routing
//! algorithms translate `(dimension, coordinate)` to a port in O(1) via
//! [`HyperX::port_for`] and back via [`HyperX::port_meaning`].

use crate::coordinates::{CoordinateSystem, Coordinates};
use crate::graph::{Neighbor, Network, PortId, SwitchId};
use serde::{Deserialize, Serialize};

/// Description of what a healthy HyperX port connects to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortMeaning {
    /// Dimension the port travels along.
    pub dim: usize,
    /// Coordinate value of the neighbor in that dimension.
    pub value: usize,
}

/// A HyperX topology: coordinate system plus switch-level network.
///
/// The network is owned by the struct; faults are injected through
/// [`HyperX::network_mut`] (or the helpers in [`crate::faults`]) and never
/// change the coordinate system or the port layout.
#[derive(Clone, Debug)]
pub struct HyperX {
    coords: CoordinateSystem,
    network: Network,
    /// Cumulative port offsets per dimension: ports of dimension `d` start at
    /// `offsets[d]` and span `side(d) - 1` ports.
    offsets: Vec<usize>,
}

impl HyperX {
    /// Builds the HyperX with the given sides, e.g. `&[16, 16]` for the 2D
    /// network of the paper and `&[8, 8, 8]` for the 3D one.
    pub fn new(sides: &[usize]) -> Self {
        let coords = CoordinateSystem::new(sides);
        let n_switches = coords.num_switches();
        let dims = coords.dims();
        let mut offsets = Vec::with_capacity(dims + 1);
        let mut acc = 0usize;
        for d in 0..dims {
            offsets.push(acc);
            acc += coords.side(d) - 1;
        }
        offsets.push(acc);
        let radix = acc;

        let mut ports: Vec<Vec<Option<Neighbor>>> = vec![vec![None; radix]; n_switches];
        #[allow(clippy::needless_range_loop)] // s/d index parallel structures
        for s in 0..n_switches {
            let c = coords.to_coords(s);
            for d in 0..dims {
                let k = coords.side(d);
                for v in 0..k {
                    if v == c[d] {
                        continue;
                    }
                    let p = Self::port_index(&offsets, c[d], d, v);
                    let t = coords.with_coordinate(s, d, v);
                    // The reverse port is the port of `t` in dimension `d`
                    // pointing back at our coordinate value.
                    let reverse = Self::port_index(&offsets, v, d, c[d]);
                    ports[s][p] = Some(Neighbor {
                        switch: t,
                        reverse_port: reverse,
                    });
                }
            }
        }
        let network = Network::from_ports(ports);
        HyperX {
            coords,
            network,
            offsets,
        }
    }

    /// The regular HyperX `side^dims`, e.g. `regular(3, 8)` is the paper's 3D network.
    pub fn regular(dims: usize, side: usize) -> Self {
        Self::new(&vec![side; dims])
    }

    fn port_index(offsets: &[usize], own_value: usize, dim: usize, target_value: usize) -> PortId {
        debug_assert!(own_value != target_value);
        offsets[dim]
            + if target_value < own_value {
                target_value
            } else {
                target_value - 1
            }
    }

    /// Coordinate system of the topology.
    pub fn coords(&self) -> &CoordinateSystem {
        &self.coords
    }

    /// Immutable access to the switch-level network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the switch-level network, for fault injection.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.coords.dims()
    }

    /// Side of dimension `d`.
    pub fn side(&self, d: usize) -> usize {
        self.coords.side(d)
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.coords.num_switches()
    }

    /// Switch-to-switch radix (ports per switch), `Σ (k_i − 1)`.
    pub fn switch_radix(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    /// Coordinates of switch `s`.
    pub fn switch_coords(&self, s: SwitchId) -> Coordinates {
        self.coords.to_coords(s)
    }

    /// Switch id of the given coordinates.
    pub fn switch_id(&self, c: &[usize]) -> SwitchId {
        self.coords.to_id(c)
    }

    /// The port of `s` that, in the healthy network, reaches the neighbor
    /// whose coordinate in dimension `dim` is `value`.
    ///
    /// # Panics
    /// Panics if `value` equals the switch's own coordinate in `dim`.
    pub fn port_for(&self, s: SwitchId, dim: usize, value: usize) -> PortId {
        let own = self.coords.to_coords(s)[dim];
        assert!(
            own != value,
            "switch {s} already has coordinate {value} in dimension {dim}"
        );
        Self::port_index(&self.offsets, own, dim, value)
    }

    /// The dimension and target coordinate value of port `p` of switch `s`.
    pub fn port_meaning(&self, s: SwitchId, p: PortId) -> PortMeaning {
        let dim = match self.offsets.binary_search(&p) {
            Ok(d) if d < self.dims() => d,
            Ok(d) => d - 1,
            Err(d) => d - 1,
        };
        let own = self.coords.to_coords(s)[dim];
        let off = p - self.offsets[dim];
        let value = if off < own { off } else { off + 1 };
        PortMeaning { dim, value }
    }

    /// Ports of dimension `d` as a half-open range.
    pub fn dimension_ports(&self, d: usize) -> std::ops::Range<PortId> {
        self.offsets[d]..self.offsets[d + 1]
    }

    /// Id of the neighbor of `s` obtained by setting dimension `dim` to `value`.
    pub fn neighbor_id(&self, s: SwitchId, dim: usize, value: usize) -> SwitchId {
        self.coords.with_coordinate(s, dim, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::DistanceMatrix;
    use crate::cartesian::cartesian_power;
    use crate::complete::complete_graph;

    #[test]
    fn paper_2d_dimensions() {
        let hx = HyperX::regular(2, 16);
        assert_eq!(hx.num_switches(), 256);
        assert_eq!(hx.switch_radix(), 30);
        assert_eq!(hx.network().num_links(), 3840);
    }

    #[test]
    fn paper_3d_dimensions() {
        let hx = HyperX::regular(3, 8);
        assert_eq!(hx.num_switches(), 512);
        assert_eq!(hx.switch_radix(), 21);
        assert_eq!(hx.network().num_links(), 5376);
    }

    #[test]
    fn graph_distance_equals_hamming_distance_small() {
        let hx = HyperX::new(&[4, 3, 2]);
        let d = DistanceMatrix::compute(hx.network());
        for a in 0..hx.num_switches() {
            for b in 0..hx.num_switches() {
                assert_eq!(
                    d.get(a, b) as usize,
                    hx.coords().hamming_distance(a, b),
                    "distance mismatch between {a} and {b}"
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn port_for_and_port_meaning_are_inverse() {
        let hx = HyperX::new(&[5, 4, 3]);
        for s in 0..hx.num_switches() {
            let c = hx.switch_coords(s);
            for d in 0..hx.dims() {
                for v in 0..hx.side(d) {
                    if v == c[d] {
                        continue;
                    }
                    let p = hx.port_for(s, d, v);
                    let m = hx.port_meaning(s, p);
                    assert_eq!(m.dim, d);
                    assert_eq!(m.value, v);
                    let n = hx.network().neighbor(s, p).unwrap();
                    assert_eq!(n.switch, hx.neighbor_id(s, d, v));
                }
            }
        }
    }

    #[test]
    fn ports_are_grouped_by_dimension() {
        let hx = HyperX::new(&[4, 4]);
        for s in 0..hx.num_switches() {
            for d in 0..hx.dims() {
                for p in hx.dimension_ports(d) {
                    assert_eq!(hx.port_meaning(s, p).dim, d);
                }
            }
        }
    }

    #[test]
    fn matches_cartesian_power_construction() {
        // The direct constructor and the generic Cartesian product must agree
        // on the vertex labelling and the edge set.
        let hx = HyperX::regular(3, 3);
        let prod = cartesian_power(&[complete_graph(3), complete_graph(3), complete_graph(3)]);
        assert_eq!(hx.num_switches(), prod.num_switches());
        assert_eq!(hx.network().num_links(), prod.num_links());
        for s in 0..hx.num_switches() {
            let mut a: Vec<usize> = hx.network().neighbors(s).map(|(_, n)| n.switch).collect();
            let mut b: Vec<usize> = prod.neighbors(s).map(|(_, n)| n.switch).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighborhood of switch {s} differs");
        }
    }

    #[test]
    fn reverse_ports_consistent() {
        let hx = HyperX::new(&[6, 5]);
        let net = hx.network();
        for s in 0..hx.num_switches() {
            for (p, n) in net.neighbors(s) {
                let back = net.neighbor(n.switch, n.reverse_port).unwrap();
                assert_eq!(back.switch, s);
                assert_eq!(back.reverse_port, p);
            }
        }
    }

    #[test]
    #[should_panic]
    fn port_for_own_value_panics() {
        let hx = HyperX::regular(2, 4);
        let s = hx.switch_id(&[1, 2]);
        let _ = hx.port_for(s, 0, 1);
    }
}
