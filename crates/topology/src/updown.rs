//! The opportunistic Up/Down escape subnetwork of SurePath (paper §3.2).
//!
//! Starting from a chosen root switch, every link is classified by comparing
//! its endpoints' BFS distance to the root:
//!
//! * different distances → an **Up/Down link** (the paper's *black* links);
//! * equal distances → a **horizontal link** (the paper's *red* links),
//!   usable only opportunistically as a *shortcut*.
//!
//! The *Up/Down distance* between two switches is the length of the shortest
//! path made of an Up sub-path (every hop one level closer to the root)
//! followed by a Down sub-path (every hop one level further from the root).
//! A horizontal link is a valid escape hop only when it strictly reduces the
//! Up/Down distance to the destination — exactly the table rule described in
//! the paper ("each entry with a value greater than 0 representing a valid
//! candidate").

use crate::bfs::{bfs_distances, UNREACHABLE};
use crate::graph::{Network, PortId, SwitchId};
use serde::{Deserialize, Serialize};

/// Classification of a live link with respect to the escape root.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// The far endpoint is one level closer to the root (a black link walked upward).
    Up,
    /// The far endpoint is one level further from the root (a black link walked downward).
    Down,
    /// Both endpoints are at the same level (a red link, usable as a shortcut).
    Horizontal,
}

/// An escape-subnetwork candidate hop offered at some switch for some destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EscapeCandidate {
    /// Output port to request.
    pub port: PortId,
    /// Switch on the other side of the port.
    pub neighbor: SwitchId,
    /// Link class of the hop (determines its penalty).
    pub class: LinkClass,
    /// Strictly positive reduction of the Up/Down distance to the destination.
    pub reduction: u16,
}

/// The escape subnetwork: levels, link classes and all-pairs Up/Down distances.
///
/// Rebuild the structure (with [`UpDownEscape::new`]) whenever the set of
/// alive links changes; the construction is a handful of BFS traversals, the
/// same cost the paper attributes to recomputing Minimal routing tables.
#[derive(Clone, Debug)]
pub struct UpDownEscape {
    root: SwitchId,
    levels: Vec<u16>,
    /// `classes[s][p]`: class of the live link at port `p` of switch `s`.
    classes: Vec<Vec<Option<LinkClass>>>,
    /// Flat `n × n` matrix of Up/Down distances.
    updown: Vec<u16>,
    n: usize,
}

impl UpDownEscape {
    /// Builds the escape subnetwork rooted at `root` over the alive links of `net`.
    ///
    /// # Panics
    /// Panics if the network is disconnected — an escape subnetwork cannot
    /// guarantee delivery in that case, and the caller should detect it first.
    pub fn new(net: &Network, root: SwitchId) -> Self {
        let n = net.num_switches();
        let levels = bfs_distances(net, root);
        assert!(
            !levels.contains(&UNREACHABLE),
            "the escape subnetwork requires a connected network"
        );

        let mut classes = vec![Vec::new(); n];
        for s in 0..n {
            classes[s] = (0..net.ports(s))
                .map(|p| {
                    net.neighbor(s, p)
                        .map(|nb| match levels[nb.switch].cmp(&levels[s]) {
                            std::cmp::Ordering::Less => LinkClass::Up,
                            std::cmp::Ordering::Greater => LinkClass::Down,
                            std::cmp::Ordering::Equal => LinkClass::Horizontal,
                        })
                })
                .collect();
        }

        let updown = Self::compute_updown_distances(net, &levels);
        UpDownEscape {
            root,
            levels,
            classes,
            updown,
            n,
        }
    }

    /// Up/Down distances via up-reachability sets.
    ///
    /// `UpReach(x)` is the set of switches reachable from `x` using only Up
    /// hops. The Up/Down distance is then
    /// `ud(x, y) = level(x) + level(y) − 2·max{ level(z) : z ∈ UpReach(x) ∩ UpReach(y) }`.
    /// The root belongs to every `UpReach` set, so the distance is always defined.
    fn compute_updown_distances(net: &Network, levels: &[u16]) -> Vec<u16> {
        let n = net.num_switches();
        let words = n.div_ceil(64);
        // up_reach[x] is a bitset over switches.
        let mut up_reach = vec![vec![0u64; words]; n];
        // Process switches in order of increasing level so parents are ready.
        let mut order: Vec<SwitchId> = (0..n).collect();
        order.sort_by_key(|&s| levels[s]);
        for &s in &order {
            let (word, bit) = (s / 64, s % 64);
            up_reach[s][word] |= 1 << bit;
            // Union of the parents' reach sets.
            let parents: Vec<SwitchId> = net
                .neighbors(s)
                .filter(|(_, nb)| levels[nb.switch] + 1 == levels[s])
                .map(|(_, nb)| nb.switch)
                .collect();
            for p in parents {
                // Split borrows: copy the parent's set into the child's.
                let (a, b) = if p < s {
                    let (left, right) = up_reach.split_at_mut(s);
                    (&left[p], &mut right[0])
                } else {
                    let (left, right) = up_reach.split_at_mut(p);
                    (&right[0], &mut left[s])
                };
                for (dst, src) in b.iter_mut().zip(a.iter()) {
                    *dst |= *src;
                }
            }
        }

        // For the max-level lookup, precompute each switch's level.
        let mut out = vec![0u16; n * n];
        let mut inter = vec![0u64; words];
        for x in 0..n {
            for y in x..n {
                let best = {
                    for w in 0..words {
                        inter[w] = up_reach[x][w] & up_reach[y][w];
                    }
                    let mut best_level = 0u16;
                    let mut found = false;
                    for (w, &word) in inter.iter().enumerate() {
                        let mut word = word;
                        while word != 0 {
                            let bit = word.trailing_zeros() as usize;
                            let z = w * 64 + bit;
                            if !found || levels[z] > best_level {
                                best_level = levels[z];
                                found = true;
                            }
                            word &= word - 1;
                        }
                    }
                    debug_assert!(found, "the root belongs to every up-reach set");
                    best_level
                };
                let d = levels[x] + levels[y] - 2 * best;
                out[x * n + y] = d;
                out[y * n + x] = d;
            }
        }
        out
    }

    /// The root switch of the escape subnetwork.
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// BFS level (distance to the root) of switch `s`.
    pub fn level(&self, s: SwitchId) -> u16 {
        self.levels[s]
    }

    /// Class of the live link at port `p` of switch `s`, or `None` for dead ports.
    pub fn link_class(&self, s: SwitchId, p: PortId) -> Option<LinkClass> {
        self.classes[s][p]
    }

    /// Up/Down distance between two switches.
    #[inline]
    pub fn updown_distance(&self, a: SwitchId, b: SwitchId) -> u16 {
        self.updown[a * self.n + b]
    }

    /// The escape candidates offered at `current` for a packet heading to `dest`:
    /// every live port whose far endpoint strictly reduces the Up/Down distance.
    ///
    /// Returns an empty vector only when `current == dest`.
    pub fn escape_candidates(
        &self,
        net: &Network,
        current: SwitchId,
        dest: SwitchId,
    ) -> Vec<EscapeCandidate> {
        if current == dest {
            return Vec::new();
        }
        let here = self.updown_distance(current, dest);
        let mut out = Vec::new();
        for (p, nb) in net.neighbors(current) {
            let there = self.updown_distance(nb.switch, dest);
            if there < here {
                out.push(EscapeCandidate {
                    port: p,
                    neighbor: nb.switch,
                    class: self.classes[current][p].expect("live port has a class"),
                    reduction: here - there,
                });
            }
        }
        out
    }

    /// Number of links per class, useful for diagnostics and the
    /// `escape_anatomy` example.
    pub fn class_census(&self, net: &Network) -> ClassCensus {
        let mut census = ClassCensus::default();
        for s in 0..self.n {
            for (p, nb) in net.neighbors(s) {
                if s < nb.switch {
                    match self.classes[s][p].unwrap() {
                        LinkClass::Up | LinkClass::Down => census.updown += 1,
                        LinkClass::Horizontal => census.horizontal += 1,
                    }
                }
            }
        }
        census
    }
}

/// Counts of escape-subnetwork link classes (black vs red links).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCensus {
    /// Links whose endpoints are at different levels (black).
    pub updown: usize,
    /// Links whose endpoints are at the same level (red).
    pub horizontal: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::HyperX;

    #[test]
    fn figure2_example_classification() {
        // The 4×4 HyperX of Figure 2 rooted at (0,0): the link (1,0)-(1,1) is
        // black (levels 1 and 2) and the link (1,0)-(2,0) is red (both level 1).
        let hx = HyperX::regular(2, 4);
        let root = hx.switch_id(&[0, 0]);
        let esc = UpDownEscape::new(hx.network(), root);
        let s10 = hx.switch_id(&[1, 0]);
        let s11 = hx.switch_id(&[1, 1]);
        let s20 = hx.switch_id(&[2, 0]);
        assert_eq!(esc.level(s10), 1);
        assert_eq!(esc.level(s11), 2);
        assert_eq!(esc.level(s20), 1);
        let p_black = hx.network().port_towards(s10, s11).unwrap();
        let p_red = hx.network().port_towards(s10, s20).unwrap();
        assert_eq!(esc.link_class(s10, p_black), Some(LinkClass::Down));
        assert_eq!(
            esc.link_class(s11, hx.network().port_towards(s11, s10).unwrap()),
            Some(LinkClass::Up)
        );
        assert_eq!(esc.link_class(s10, p_red), Some(LinkClass::Horizontal));
    }

    #[test]
    fn figure2_updown_distances() {
        // From the paper: (1,0) and (2,0) are at Up/Down distance 2 (one Up,
        // one Down); (0,1) to (0,3) has Up/Down distance 2 but the direct red
        // link reduces it, so it must appear as a candidate.
        let hx = HyperX::regular(2, 4);
        let root = hx.switch_id(&[0, 0]);
        let esc = UpDownEscape::new(hx.network(), root);
        let s10 = hx.switch_id(&[1, 0]);
        let s20 = hx.switch_id(&[2, 0]);
        assert_eq!(esc.updown_distance(s10, s20), 2);
        let s01 = hx.switch_id(&[0, 1]);
        let s03 = hx.switch_id(&[0, 3]);
        assert_eq!(esc.updown_distance(s01, s03), 2);
        let cands = esc.escape_candidates(hx.network(), s01, s03);
        let direct_port = hx.network().port_towards(s01, s03).unwrap();
        let direct = cands.iter().find(|c| c.port == direct_port).unwrap();
        assert_eq!(direct.class, LinkClass::Horizontal);
        assert_eq!(direct.reduction, 2);
        // The paper: the link from (0,1) to (0,2) is never a candidate since
        // it does not decrease the Up/Down distance.
        let s02 = hx.switch_id(&[0, 2]);
        let bad_port = hx.network().port_towards(s01, s02).unwrap();
        assert!(cands.iter().all(|c| c.port != bad_port));
    }

    #[test]
    fn updown_distance_is_symmetric_and_zero_on_diagonal() {
        let hx = HyperX::regular(2, 5);
        let esc = UpDownEscape::new(hx.network(), 0);
        let n = hx.num_switches();
        for a in 0..n {
            assert_eq!(esc.updown_distance(a, a), 0);
            for b in 0..n {
                assert_eq!(esc.updown_distance(a, b), esc.updown_distance(b, a));
            }
        }
    }

    #[test]
    fn updown_distance_bounds() {
        // graph distance ≤ up/down distance ≤ level(a) + level(b)
        let hx = HyperX::regular(3, 3);
        let esc = UpDownEscape::new(hx.network(), 0);
        let d = crate::bfs::DistanceMatrix::compute(hx.network());
        for a in 0..hx.num_switches() {
            for b in 0..hx.num_switches() {
                let ud = esc.updown_distance(a, b);
                assert!(ud >= d.get(a, b));
                assert!(ud <= esc.level(a) + esc.level(b));
            }
        }
    }

    #[test]
    fn escape_candidates_always_exist_and_make_progress() {
        let hx = HyperX::regular(2, 4);
        let esc = UpDownEscape::new(hx.network(), 5);
        for cur in 0..hx.num_switches() {
            for dest in 0..hx.num_switches() {
                let cands = esc.escape_candidates(hx.network(), cur, dest);
                if cur == dest {
                    assert!(cands.is_empty());
                } else {
                    assert!(
                        !cands.is_empty(),
                        "no escape candidate from {cur} to {dest}"
                    );
                    for c in cands {
                        assert!(c.reduction > 0);
                        assert_eq!(
                            esc.updown_distance(cur, dest) - esc.updown_distance(c.neighbor, dest),
                            c.reduction
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn escape_survives_faults_while_connected() {
        let hx = HyperX::regular(2, 4);
        let mut net = hx.network().clone();
        // Remove a whole row (the worst structured shape for a 4×4) and rebuild.
        let shape = crate::faults::FaultShape::Row {
            along_dim: 0,
            at: vec![0, 2],
        };
        crate::faults::FaultSet::from_shape(&shape, &hx).apply(&mut net);
        assert!(net.is_connected());
        let esc = UpDownEscape::new(&net, 0);
        for cur in 0..hx.num_switches() {
            for dest in 0..hx.num_switches() {
                if cur != dest {
                    assert!(!esc.escape_candidates(&net, cur, dest).is_empty());
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn disconnected_network_rejected() {
        let mut net = crate::complete::complete_graph(4);
        for x in 1..4 {
            net.remove_link(0, x);
        }
        let _ = UpDownEscape::new(&net, 1);
    }

    #[test]
    fn hyperx_minimal_horizontal_hops_reduce_updown_by_two() {
        // Paper §3.2: "In the HyperX, minimal paths that use horizontal links
        // reduce the Up/Down distance by +2 each step".
        let hx = HyperX::regular(2, 4);
        let root = hx.switch_id(&[0, 0]);
        let esc = UpDownEscape::new(hx.network(), root);
        // (0,1) -> (0,3): the direct link is horizontal and reduces by 2.
        let a = hx.switch_id(&[0, 1]);
        let b = hx.switch_id(&[0, 3]);
        let cands = esc.escape_candidates(hx.network(), a, b);
        let direct = cands
            .iter()
            .find(|c| c.neighbor == b)
            .expect("direct neighbor must be a candidate");
        assert_eq!(direct.class, LinkClass::Horizontal);
        assert_eq!(direct.reduction, 2);
    }

    #[test]
    fn class_census_totals_match_link_count() {
        let hx = HyperX::regular(2, 4);
        let esc = UpDownEscape::new(hx.network(), 0);
        let census = esc.class_census(hx.network());
        assert_eq!(census.updown + census.horizontal, hx.network().num_links());
        assert!(census.updown > 0 && census.horizontal > 0);
    }
}
