//! Property tests of the shard-manifest sidecar: any generated sequence of
//! assignment/delivery events must survive a write → reopen round trip with
//! the same indexed state, `done` must stay terminal, and the fingerprint
//! partition must be stable and total.

use proptest::prelude::*;
use std::path::PathBuf;
use surepath_runner::manifest::{
    ManifestRecord, MANIFEST_ASSIGNED, MANIFEST_DONE, MANIFEST_RECLAIMED,
};
use surepath_runner::{shard_of_fingerprint, ShardManifest};

fn temp_manifest(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("surepath-runner-manifest-props");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("prop-{tag}-{}.manifest.jsonl", std::process::id()))
}

/// Raw event material, decoded into (job, worker, kind) by [`decode`] —
/// kind 0 = assigned, 1 = done, 2 = reclaimed. The vendored proptest has no
/// tuple strategies, so one u64 carries all three fields; the small
/// job/worker universes make collisions — re-assignments, repeat
/// deliveries, reclaim-after-done replays — actually happen.
fn events() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..u64::MAX, 0..=40)
}

fn decode(raw: u64) -> (u64, u64, u64) {
    (raw % 12, (raw >> 4) % 5, (raw >> 8) % 3)
}

fn event_fp(job: u64) -> String {
    format!("{:016x}", job.wrapping_mul(0x9e3779b97f4a7c15))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn manifest_round_trips_through_reopen(raw in events(), tag in 0u64..u64::MAX) {
        let path = temp_manifest(tag);
        let _ = std::fs::remove_file(&path);
        let mut live = ShardManifest::open(&path).unwrap();
        for &event in &raw {
            let (job, worker, kind) = decode(event);
            let fp = event_fp(job);
            let shard = shard_of_fingerprint(&fp, 4);
            let worker = format!("w{worker}");
            match kind {
                1 => live.record_done(&fp, shard, &worker).unwrap(),
                2 => live.record_reclaimed(&fp, shard, &worker).unwrap(),
                _ => live.record_assigned(&fp, shard, &worker).unwrap(),
            }
        }
        let live_records: Vec<ManifestRecord> =
            live.records_in_order().cloned().collect();
        drop(live);

        // Reopen: identical index, identical order, no corruption.
        let reopened = ShardManifest::open_read_only(&path).unwrap();
        let reopened_records: Vec<ManifestRecord> =
            reopened.records_in_order().cloned().collect();
        prop_assert_eq!(&reopened_records, &live_records);
        prop_assert_eq!(reopened.corrupt_lines, 0);

        // Invariants of the indexed state: done is terminal, statuses are
        // canonical, shards match the fingerprint partition.
        for record in &reopened_records {
            prop_assert!(
                record.status == MANIFEST_ASSIGNED
                    || record.status == MANIFEST_DONE
                    || record.status == MANIFEST_RECLAIMED,
                "unexpected status {:?}",
                record.status
            );
            prop_assert_eq!(record.shard, shard_of_fingerprint(&record.fp, 4));
            let fp_done = raw.iter().any(|&event| {
                let (job, _, kind) = decode(event);
                kind == 1 && event_fp(job) == record.fp
            });
            if record.status == MANIFEST_DONE {
                // Every event stream that delivered this fp keeps it done.
                prop_assert!(fp_done, "done without a delivery event");
            } else {
                // And `done` is terminal: no later assign/reclaim replay may
                // have downgraded a delivered fingerprint.
                prop_assert!(!fp_done, "a delivered fingerprint was downgraded");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_sharding_is_total_and_stable(job in 0u64..u64::MAX, shards in 1usize..32) {
        let fp = format!("{job:016x}");
        let shard = shard_of_fingerprint(&fp, shards);
        prop_assert!(shard < shards);
        prop_assert_eq!(shard, shard_of_fingerprint(&fp, shards));
    }
}
