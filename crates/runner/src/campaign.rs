//! The campaign driver: spec → jobs → executor → store.

use crate::executor::{run_work_stealing_chunked, ChunkOptions, JobOutcome};
use crate::fingerprint::job_fingerprint;
use crate::progress::ProgressReporter;
use crate::spec::{CampaignSpec, JobSpec};
use crate::store::ResultStore;
use crate::timings::{load_timings, timings_path, TimingRecord, TimingsLog};
use serde::Value;
use std::path::Path;
use std::time::{Duration, Instant};

/// What a finished campaign run looked like.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignOutcome {
    /// Total jobs in the expanded grid.
    pub total: usize,
    /// Jobs skipped because the store already had them.
    pub skipped: usize,
    /// Jobs executed this run.
    pub executed: usize,
    /// Of the executed jobs, how many failed (error or panic).
    pub failed: usize,
    /// Whether the global deadline stopped the run before the grid was
    /// drained (the store was still finalized cleanly; re-running resumes).
    pub deadline_hit: bool,
}

impl CampaignOutcome {
    /// Whether every grid cell now has a successful result.
    pub fn is_complete(&self) -> bool {
        self.skipped + self.executed - self.failed == self.total
    }
}

/// Knobs of [`run_campaign_with`] beyond the spec itself.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// Suppress per-job progress output.
    pub quiet: bool,
    /// Explicit wall-clock budget; `None` resolves `SUREPATH_DEADLINE_SECS`,
    /// then the spec's `deadline_secs` field.
    pub deadline: Option<Duration>,
    /// Write per-job wall-clock to the `<store>.timings.jsonl` sidecar.
    pub timings: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            threads: None,
            quiet: false,
            deadline: None,
            timings: true,
        }
    }
}

/// The deadline from `SUREPATH_DEADLINE_SECS`, if set and parseable.
pub fn deadline_from_env() -> Option<Duration> {
    std::env::var("SUREPATH_DEADLINE_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&secs| secs > 0)
        .map(Duration::from_secs)
}

/// Runs (or resumes) a campaign.
///
/// Expands `spec`, skips every job whose fingerprint is already complete in
/// the store at `store_path`, and executes the rest on a work-stealing pool
/// of `threads` workers (`None` = all cores). Each pending job is passed to
/// `job_fn`; `Ok(value)` is streamed to the store as a success, `Err` (and
/// any panic) as a retryable failure. On completion the store is rewritten
/// in canonical grid order, making repeated runs byte-identical.
pub fn run_campaign<F>(
    spec: &CampaignSpec,
    store_path: &Path,
    threads: Option<usize>,
    quiet: bool,
    job_fn: F,
) -> std::io::Result<CampaignOutcome>
where
    F: Fn(&JobSpec) -> Result<Value, String> + Sync,
{
    run_campaign_with(
        spec,
        store_path,
        &RunOptions {
            threads,
            quiet,
            ..RunOptions::default()
        },
        job_fn,
    )
}

/// [`run_campaign`] with the full option set: an optional global deadline
/// (stop dequeuing, finalize the partial store cleanly, report
/// `deadline_hit` so callers can exit with a distinct code and a later run
/// resumes the rest) and the per-job wall-clock sidecar.
pub fn run_campaign_with<F>(
    spec: &CampaignSpec,
    store_path: &Path,
    opts: &RunOptions,
    job_fn: F,
) -> std::io::Result<CampaignOutcome>
where
    F: Fn(&JobSpec) -> Result<Value, String> + Sync,
{
    let jobs = spec
        .expand()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let mut store = ResultStore::open(store_path)?;
    let mut timings = if opts.timings {
        Some(TimingsLog::open(&timings_path(store_path))?)
    } else {
        None
    };
    // Env beats the spec field: an operator reclaiming a machine overrides
    // whatever budget the spec author wrote.
    let deadline = opts
        .deadline
        .or_else(deadline_from_env)
        .or(spec.deadline_secs.map(Duration::from_secs))
        .map(|budget| Instant::now() + budget);

    let pending: Vec<JobSpec> = jobs
        .iter()
        .filter(|job| !store.is_complete(&job_fingerprint(job)))
        .cloned()
        .collect();
    let skipped = jobs.len() - pending.len();

    let mut progress = ProgressReporter::new(jobs.len(), skipped, !opts.quiet);
    let mut io_error: Option<std::io::Error> = None;
    let mut deadline_hit = false;
    // Adaptive chunking: tiny jobs amortise per-job dispatch overhead. The
    // cost estimate is seeded from the timings sidecar of a previous run
    // (resumed campaigns start with the right chunk size immediately) and
    // tracks the workload as jobs finish. Results still stream per job and
    // the store is finalized in canonical order, so store bytes are
    // unaffected by the chunk size.
    let chunking = ChunkOptions {
        initial_estimate_millis: load_timings(&timings_path(store_path))
            .ok()
            .filter(|records| !records.is_empty())
            .map(|records| {
                records.iter().map(|r| r.millis as f64).sum::<f64>() / records.len() as f64
            }),
        ..ChunkOptions::default()
    };
    run_work_stealing_chunked(
        &pending,
        opts.threads
            .unwrap_or_else(crate::executor::default_threads),
        &chunking,
        |_, job| {
            let started = Instant::now();
            let result = job_fn(job);
            (result, started.elapsed().as_millis() as u64)
        },
        |idx, outcome| {
            let job = &pending[idx];
            let (write_result, millis) = match outcome {
                JobOutcome::Completed((Ok(result), millis)) => {
                    progress.job_finished(&job.label(), true);
                    (store.append_ok(job, result), Some(millis))
                }
                JobOutcome::Completed((Err(error), millis)) => {
                    progress.job_finished(&job.label(), false);
                    (store.append_failed(job, error), Some(millis))
                }
                JobOutcome::Panicked(message) => {
                    progress.job_finished(&job.label(), false);
                    (store.append_failed(job, format!("panic: {message}")), None)
                }
            };
            if let (Some(log), Some(millis)) = (&mut timings, millis) {
                // Sidecar trouble is not worth losing simulation results
                // over; the store write below is what gates continuation.
                let _ = log.append(&TimingRecord {
                    fp: job_fingerprint(job),
                    label: job.label(),
                    millis,
                    worker: "local".to_string(),
                });
            }
            match write_result {
                Ok(()) => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        // Budget exhausted: stop dequeuing. In-flight jobs
                        // finish but are not persisted; the finalized
                        // partial store resumes them next run.
                        deadline_hit = true;
                        return false;
                    }
                    true
                }
                Err(e) => {
                    // A store that cannot be written makes every further
                    // result unpersistable: stop the pool instead of burning
                    // hours of simulation that would be lost.
                    io_error.get_or_insert(e);
                    false
                }
            }
        },
    );
    if let Some(e) = io_error {
        return Err(e);
    }
    let (executed, failed) = progress.finish();
    store.finalize(&jobs)?;
    Ok(CampaignOutcome {
        total: jobs.len(),
        skipped,
        executed,
        failed,
        deadline_hit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologySpec;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn spec(name: &str) -> CampaignSpec {
        CampaignSpec {
            name: name.to_string(),
            topologies: vec![TopologySpec {
                sides: vec![4, 4],
                concentration: None,
            }],
            mechanisms: Some(vec!["a".into(), "b".into()]),
            traffics: Some(vec!["uniform".into()]),
            scenarios: Some(vec!["none".into()]),
            loads: Some(vec![0.25, 0.5]),
            seeds: Some(vec![1, 2, 3]),
            ..CampaignSpec::default()
        }
    }

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("surepath-runner-campaign-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    /// A deterministic fake workload: result derives only from the job.
    fn fake_result(job: &JobSpec) -> Result<Value, String> {
        let score = job.seed as f64 * job.load.unwrap_or(1.0);
        serde_json::to_value(&score).map_err(|e| e.to_string())
    }

    #[test]
    fn full_run_then_resume_skips_everything() {
        let path = temp_store("resume-all");
        let _ = std::fs::remove_file(&path);
        let s = spec("resume-all");

        let first = run_campaign(&s, &path, Some(4), true, fake_result).unwrap();
        assert_eq!(first.total, 12);
        assert_eq!(first.executed, 12);
        assert_eq!(first.skipped, 0);
        assert!(first.is_complete());

        let executed = AtomicUsize::new(0);
        let second = run_campaign(&s, &path, Some(4), true, |job| {
            executed.fetch_add(1, Ordering::Relaxed);
            fake_result(job)
        })
        .unwrap();
        assert_eq!(second.skipped, 12);
        assert_eq!(second.executed, 0);
        assert_eq!(executed.load(Ordering::Relaxed), 0, "no job re-ran");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let path_a = temp_store("bytes-a");
        let path_b = temp_store("bytes-b");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
        let s = spec("bytes");
        run_campaign(&s, &path_a, Some(1), true, fake_result).unwrap();
        run_campaign(&s, &path_b, Some(6), true, fake_result).unwrap();
        let a = std::fs::read(&path_a).unwrap();
        let b = std::fs::read(&path_b).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "different thread counts must give identical stores");
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }

    #[test]
    fn interrupted_campaign_reruns_only_missing_jobs() {
        let path = temp_store("partial");
        let _ = std::fs::remove_file(&path);
        let s = spec("partial");
        let jobs = s.expand().unwrap();

        // Simulate an interrupted run: only 5 of 12 results made it to disk.
        {
            let mut store = ResultStore::open(&path).unwrap();
            for job in jobs.iter().take(5) {
                store.append_ok(job, fake_result(job).unwrap()).unwrap();
            }
        }
        let executed = AtomicUsize::new(0);
        let outcome = run_campaign(&s, &path, Some(4), true, |job| {
            executed.fetch_add(1, Ordering::Relaxed);
            fake_result(job)
        })
        .unwrap();
        assert_eq!(outcome.skipped, 5);
        assert_eq!(outcome.executed, 7);
        assert_eq!(executed.load(Ordering::Relaxed), 7);
        assert!(outcome.is_complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn panicking_job_fails_alone_and_is_retried_next_run() {
        let path = temp_store("panic");
        let _ = std::fs::remove_file(&path);
        let s = spec("panic");

        let outcome = run_campaign(&s, &path, Some(4), true, |job| {
            if job.seed == 2 && job.mechanism.as_deref() == Some("a") {
                panic!("simulated simulator bug");
            }
            fake_result(job)
        })
        .unwrap();
        assert_eq!(outcome.executed, 12);
        assert_eq!(outcome.failed, 2, "seed 2 × mechanism a × two loads");
        assert!(!outcome.is_complete());

        // The failure is recorded, and a healthy re-run completes the grid.
        let store = ResultStore::open(&path).unwrap();
        let failed: Vec<_> = store.records().filter(|r| r.status == "failed").collect();
        assert_eq!(failed.len(), 2);
        assert!(failed[0]
            .error
            .as_deref()
            .unwrap()
            .contains("simulated simulator bug"));

        let retry = run_campaign(&s, &path, Some(4), true, fake_result).unwrap();
        assert_eq!(retry.skipped, 10);
        assert_eq!(retry.executed, 2);
        assert!(retry.is_complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn campaign_writes_the_timings_sidecar_by_default() {
        let path = temp_store("timings");
        let sidecar = crate::timings::timings_path(&path);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&sidecar);
        let s = spec("timings");
        run_campaign(&s, &path, Some(2), true, fake_result).unwrap();
        let records = crate::timings::load_timings(&sidecar).unwrap();
        assert_eq!(records.len(), 12, "one timing per executed job");
        assert!(records.iter().all(|r| r.worker == "local"));
        // The deterministic store never mentions wall-clock.
        let store_text = std::fs::read_to_string(&path).unwrap();
        assert!(!store_text.contains("millis"), "{store_text}");

        // Opting out suppresses the sidecar.
        let path2 = temp_store("timings-off");
        let sidecar2 = crate::timings::timings_path(&path2);
        let _ = std::fs::remove_file(&path2);
        let _ = std::fs::remove_file(&sidecar2);
        run_campaign_with(
            &s,
            &path2,
            &RunOptions {
                threads: Some(2),
                quiet: true,
                timings: false,
                ..RunOptions::default()
            },
            fake_result,
        )
        .unwrap();
        assert!(!sidecar2.exists());
        for p in [&path, &sidecar, &path2] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn chunk_seeding_from_the_sidecar_leaves_store_bytes_unchanged() {
        // First run: no sidecar, chunk = 1 until samples arrive. Second run:
        // the sidecar seeds the estimate, so workers pull whole chunks of
        // these microsecond jobs from the start. The stores must agree byte
        // for byte — chunking only changes dispatch granularity.
        let path_a = temp_store("chunk-seed-a");
        let path_b = temp_store("chunk-seed-b");
        let sidecar_a = crate::timings::timings_path(&path_a);
        let sidecar_b = crate::timings::timings_path(&path_b);
        for p in [&path_a, &path_b, &sidecar_a, &sidecar_b] {
            let _ = std::fs::remove_file(p);
        }
        let s = spec("chunk-seed");
        run_campaign(&s, &path_a, Some(4), true, fake_result).unwrap();
        // Prime b's sidecar with a cheap estimate (1 ms/job -> whole chunks
        // of these microsecond jobs from the first pull), then run b fresh.
        {
            let mut log = crate::timings::TimingsLog::open(&sidecar_b).unwrap();
            log.append(&TimingRecord {
                fp: "seed".into(),
                label: "prior run".into(),
                millis: 1,
                worker: "local".into(),
            })
            .unwrap();
        }
        run_campaign(&s, &path_b, Some(4), true, fake_result).unwrap();
        assert_eq!(
            std::fs::read(&path_a).unwrap(),
            std::fs::read(&path_b).unwrap(),
            "a seeded chunk estimate must not change store bytes"
        );
        for p in [&path_a, &path_b, &sidecar_a, &sidecar_b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn deadline_stops_dequeuing_finalizes_and_resumes() {
        let path = temp_store("deadline");
        let _ = std::fs::remove_file(&path);
        let s = spec("deadline");
        // A zero-length budget: the first completed job trips the deadline.
        let outcome = run_campaign_with(
            &s,
            &path,
            &RunOptions {
                threads: Some(1),
                quiet: true,
                deadline: Some(std::time::Duration::ZERO),
                timings: false,
            },
            fake_result,
        )
        .unwrap();
        assert!(outcome.deadline_hit);
        assert!(outcome.executed >= 1, "at least the in-flight job landed");
        assert!(outcome.executed < outcome.total, "the grid was cut short");
        assert!(!outcome.is_complete());

        // The partial store was finalized cleanly: a later unbudgeted run
        // resumes exactly the missing jobs and completes the grid.
        let resumed = run_campaign(&s, &path, Some(2), true, fake_result).unwrap();
        assert!(!resumed.deadline_hit);
        assert_eq!(resumed.skipped, outcome.executed);
        assert_eq!(resumed.executed, outcome.total - outcome.executed);
        assert!(resumed.is_complete());

        // The resumed store is byte-identical to a single uninterrupted run.
        let clean = temp_store("deadline-clean");
        let _ = std::fs::remove_file(&clean);
        run_campaign(&s, &clean, Some(2), true, fake_result).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&clean).unwrap()
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&clean);
    }

    #[test]
    fn spec_deadline_field_is_honoured() {
        let path = temp_store("deadline-spec");
        let _ = std::fs::remove_file(&path);
        let s = CampaignSpec {
            // u64 seconds; Duration::ZERO is not expressible in the spec, so
            // use the smallest budget and a job that outlasts it.
            deadline_secs: Some(1),
            ..spec("deadline-spec")
        };
        let outcome = run_campaign_with(
            &s,
            &path,
            &RunOptions {
                threads: Some(1),
                quiet: true,
                timings: false,
                ..RunOptions::default()
            },
            |job| {
                std::thread::sleep(std::time::Duration::from_millis(150));
                fake_result(job)
            },
        )
        .unwrap();
        assert!(
            outcome.deadline_hit,
            "1s budget, >100ms per job on 1 thread"
        );
        assert!(!outcome.is_complete());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn job_errors_are_recorded_not_fatal() {
        let path = temp_store("errors");
        let _ = std::fs::remove_file(&path);
        let s = spec("errors");
        let outcome = run_campaign(&s, &path, Some(2), true, |job| {
            if job.mechanism.as_deref() == Some("b") {
                Err("unknown mechanism `b`".to_string())
            } else {
                fake_result(job)
            }
        })
        .unwrap();
        assert_eq!(outcome.failed, 6);
        assert_eq!(outcome.executed, 12);
        let _ = std::fs::remove_file(&path);
    }
}
