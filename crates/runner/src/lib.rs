//! # surepath-runner
//!
//! The campaign subsystem of the SurePath reproduction: describe a whole
//! grid of experiments *declaratively*, execute it on a bounded
//! work-stealing thread pool, and stream results to a resumable JSONL store.
//!
//! The crate is deliberately **domain-agnostic**: it knows nothing about
//! topologies or simulators. A campaign is a cross-product of string/number
//! dimensions ([`CampaignSpec`] → flat [`JobSpec`] list), and the caller
//! supplies the closure that turns one job into one JSON result
//! (`surepath-core` provides that bridge for simulation jobs). This keeps
//! the dependency arrow pointing upward — `surepath-core` builds *on top of*
//! the runner, so its own sweep helpers run on the same pool.
//!
//! The moving parts:
//!
//! * [`spec`] — [`CampaignSpec`], deserializable from TOML or JSON, expanded
//!   into a deterministic flat job list.
//! * [`executor`] — a fixed-size work-stealing thread pool (per-worker
//!   deques + stealing, not thread-per-job) with panic isolation.
//! * [`store`] — the append-only JSONL result store; every job is
//!   fingerprinted and already-completed jobs are skipped on restart.
//! * [`campaign`] — the driver tying the three together, with progress
//!   reporting, an optional global deadline and the timings sidecar.
//! * [`queue`] — shard queues + leases: the scheduling core the distributed
//!   driver (`surepath-dist`) builds on (static fingerprint-prefix
//!   partitioning, work stealing across shards, lease expiry).
//! * [`manifest`] — the `<store>.manifest.jsonl` shard-assignment sidecar:
//!   distinguishes "missing" from "assigned elsewhere / in-flight".
//! * [`timings`] — the `<store>.timings.jsonl` per-job wall-clock sidecar
//!   (host observations never enter the deterministic store).
//! * [`trace`] — the `<store>.trace.jsonl` packet-lifecycle sidecar (same
//!   rule: observations ride next to the store, never inside it).
//! * [`obs`] — leveled stderr event logging (`SUREPATH_LOG` filter, human or
//!   JSONL format) behind the `log_error!`…`log_debug!` macros.
//! * [`toml`] — a minimal TOML parser (the build environment has no crates.io
//!   access, so the subset campaign specs need is implemented here).
//!
//! ```no_run
//! use surepath_runner::{campaign, spec};
//! let spec = spec::load_spec_file(std::path::Path::new("campaign.toml")).unwrap();
//! let outcome = campaign::run_campaign(
//!     &spec,
//!     std::path::Path::new("results.jsonl"),
//!     None,  // threads: default = available parallelism
//!     false, // quiet
//!     |job| Ok(serde_json::to_value(&job.seed).unwrap()),
//! )
//! .unwrap();
//! println!("{} executed, {} skipped", outcome.executed, outcome.skipped);
//! ```

pub mod campaign;
pub mod executor;
pub mod fingerprint;
pub mod manifest;
pub mod obs;
pub mod progress;
pub mod queue;
pub mod spec;
pub mod store;
pub mod timings;
pub mod toml;
pub mod trace;

pub use campaign::{
    deadline_from_env, run_campaign, run_campaign_with, CampaignOutcome, RunOptions,
};
pub use executor::{
    default_threads, parallel_map, run_work_stealing, run_work_stealing_chunked, ChunkOptions,
    JobOutcome,
};
pub use fingerprint::{job_fingerprint, point_fingerprint, point_fingerprint_ignoring_rng};
pub use manifest::{manifest_path, ManifestRecord, ShardManifest};
pub use queue::{shard_of_fingerprint, Lease, ShardQueues};
pub use spec::{load_spec_file, CampaignSpec, JobSpec, TopologySpec};
pub use store::{
    group_replicas, merge_stores, MergeSummary, ResultStore, StoreRecord, STORE_SCHEMA_VERSION,
};
pub use timings::{load_timings, timings_path, TimingRecord, TimingsLog};
pub use trace::{load_trace, trace_path, TraceLog, TraceRecord};
