//! Leveled, machine-parseable event logging for the whole workspace.
//!
//! Replaces the ad-hoc `eprintln!` calls of the distributed layer with one
//! log funnel: every event has a **level**, a **target** (the subsystem —
//! `"dist"`, `"worker 3"`, `"coordinator"`), and a message. Two output
//! formats, both to stderr:
//!
//! * human (default): `[{target}] {message}` — byte-identical to the old
//!   `eprintln!` lines, so existing log greps keep working;
//! * JSONL (`SUREPATH_LOG_FORMAT=json`): `{"level":…,"target":…,"msg":…}`
//!   per line, grep- and jq-able.
//!
//! Filtering is controlled by `SUREPATH_LOG`, in the spirit of `env_logger`:
//! `off` silences everything; a bare level (`error|warn|info|debug`) sets
//! the default; comma-separated `target=level` directives override it per
//! subsystem by **longest prefix** (`worker=debug` matches `worker 3`).
//! Unset means `info`. The filter is parsed once per process.
//!
//! Logging is observation-only and writes to stderr exclusively — nothing
//! here can reach a result store, so the byte-determinism contract is
//! untouched by construction.

use std::io::Write;
use std::sync::OnceLock;

/// Event severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A failure the process could not hide (protocol errors, lost stores).
    Error,
    /// Something degraded but survivable (lease expiry, reconnect attempts).
    Warn,
    /// Normal lifecycle events (worker joins, fold progress).
    Info,
    /// High-volume diagnostics.
    Debug,
}

impl Level {
    /// Stable lowercase name (used in the JSON format and `SUREPATH_LOG`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// A parsed `SUREPATH_LOG` filter. `None` thresholds mean "off".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    default: Option<Level>,
    /// `(target-prefix, threshold)` directives; longest matching prefix wins.
    directives: Vec<(String, Option<Level>)>,
}

impl Filter {
    /// Parses a filter spec: `off`, a bare level, or comma-separated
    /// `target=level` directives mixed with at most one bare default level.
    /// Unrecognized pieces are ignored (a typo'd filter must never crash a
    /// campaign); an empty spec means the `info` default.
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter {
            default: Some(Level::Info),
            directives: Vec::new(),
        };
        for piece in spec.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match piece.split_once('=') {
                Some((target, level)) => {
                    let threshold = if level.trim().eq_ignore_ascii_case("off") {
                        None
                    } else {
                        match Level::parse(level) {
                            Some(l) => Some(l),
                            None => continue,
                        }
                    };
                    filter
                        .directives
                        .push((target.trim().to_string(), threshold));
                }
                None if piece.eq_ignore_ascii_case("off") => filter.default = None,
                None => {
                    if let Some(level) = Level::parse(piece) {
                        filter.default = Some(level);
                    }
                }
            }
        }
        // Longest prefix first, so the first match during lookup wins.
        filter
            .directives
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        filter
    }

    /// Whether an event at `level` for `target` passes the filter.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let threshold = self
            .directives
            .iter()
            .find(|(prefix, _)| target.starts_with(prefix.as_str()))
            .map(|(_, threshold)| *threshold)
            .unwrap_or(self.default);
        match threshold {
            Some(max) => level <= max,
            None => false,
        }
    }
}

/// Output formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Format {
    Human,
    Json,
}

struct Config {
    filter: Filter,
    format: Format,
}

fn config() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(|| Config {
        filter: Filter::parse(&std::env::var("SUREPATH_LOG").unwrap_or_default()),
        format: match std::env::var("SUREPATH_LOG_FORMAT").as_deref() {
            Ok("json") => Format::Json,
            _ => Format::Human,
        },
    })
}

/// Emits one event to stderr if the process filter allows it. Prefer the
/// [`log_error!`](crate::log_error)/[`log_warn!`](crate::log_warn)/
/// [`log_info!`](crate::log_info)/[`log_debug!`](crate::log_debug) macros.
pub fn log(level: Level, target: &str, message: std::fmt::Arguments<'_>) {
    let config = config();
    if !config.filter.enabled(level, target) {
        return;
    }
    let mut stderr = std::io::stderr().lock();
    // A failed stderr write (closed pipe) must never take the process down.
    let _ = match config.format {
        Format::Human => writeln!(stderr, "[{target}] {message}"),
        Format::Json => writeln!(
            stderr,
            "{{\"level\":{},\"target\":{},\"msg\":{}}}",
            serde_json::to_string(level.name()).unwrap(),
            serde_json::to_string(target).unwrap(),
            serde_json::to_string(&message.to_string()).unwrap()
        ),
    };
}

/// Logs an error-level event: `log_error!("dist", "lost {n} stores")`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::obs::log($crate::obs::Level::Error, $target, format_args!($($arg)*))
    };
}

/// Logs a warn-level event.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::obs::log($crate::obs::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// Logs an info-level event.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::obs::log($crate::obs::Level::Info, $target, format_args!($($arg)*))
    };
}

/// Logs a debug-level event.
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::obs::log($crate::obs::Level::Debug, $target, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_info() {
        let f = Filter::parse("");
        assert!(f.enabled(Level::Error, "dist"));
        assert!(f.enabled(Level::Info, "dist"));
        assert!(!f.enabled(Level::Debug, "dist"));
    }

    #[test]
    fn off_silences_everything() {
        let f = Filter::parse("off");
        assert!(!f.enabled(Level::Error, "dist"));
        assert!(!f.enabled(Level::Debug, "worker 1"));
    }

    #[test]
    fn bare_level_sets_the_default() {
        let f = Filter::parse("warn");
        assert!(f.enabled(Level::Warn, "dist"));
        assert!(!f.enabled(Level::Info, "dist"));
        let f = Filter::parse("debug");
        assert!(f.enabled(Level::Debug, "anything"));
    }

    #[test]
    fn directives_override_by_longest_prefix() {
        let f = Filter::parse("warn,worker=debug,coordinator=off");
        // `worker=debug` matches any worker-N target by prefix.
        assert!(f.enabled(Level::Debug, "worker 3"));
        assert!(!f.enabled(Level::Error, "coordinator"));
        // Everything else falls back to the bare default.
        assert!(f.enabled(Level::Warn, "dist"));
        assert!(!f.enabled(Level::Info, "dist"));
    }

    #[test]
    fn unparseable_pieces_are_ignored_not_fatal() {
        let f = Filter::parse("nonsense,worker=verbose,=,info");
        assert!(f.enabled(Level::Info, "worker 1"));
        assert!(!f.enabled(Level::Debug, "worker 1"));
    }

    #[test]
    fn level_names_round_trip() {
        for level in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(level.name()), Some(level));
        }
        assert_eq!(Level::parse("verbose"), None);
    }
}
