//! Shard queues with leases: the scheduling core of distributed campaigns.
//!
//! A distributed campaign partitions its pending jobs **statically by
//! fingerprint prefix** into a fixed number of shards — a machine-independent
//! assignment, so every coordinator (re)start deals the same jobs to the
//! same shard. On top of that static layout sits a **work-stealing shared
//! queue**: a worker drains the front of its own shard first and, when that
//! is empty, steals from the back of the most loaded other shard, so fast
//! workers finish slow workers' tails instead of idling.
//!
//! Handed-out jobs are covered by **leases**. A lease names the worker and
//! carries a deadline; when the worker disconnects (or the deadline passes
//! without a result) the job returns to its shard queue and is re-offered.
//! Jobs are identified by their index into the caller's pending list — this
//! module knows nothing about job contents, sockets or stores.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// One outstanding lease: a job handed to a worker, awaited back.
#[derive(Clone, Debug)]
pub struct Lease {
    /// The shard the job belongs to (where it returns on expiry).
    pub shard: usize,
    /// The worker holding the lease.
    pub worker: String,
    /// When the lease expires and the job is re-offered.
    pub expires: Instant,
}

/// The static shard of a fingerprint: its leading hex prefix reduced modulo
/// the shard count. Stable across processes and machines (fingerprints are
/// FNV-1a of canonical job JSON), so a restarted coordinator re-deals
/// identically.
pub fn shard_of_fingerprint(fingerprint: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "need at least one shard");
    let prefix = fingerprint.get(..8).unwrap_or(fingerprint);
    let value = u64::from_str_radix(prefix, 16).unwrap_or_else(|_| {
        // Non-hex identifiers (tests, custom kinds) still shard stably.
        crate::fingerprint::fnv1a64(fingerprint.as_bytes())
    });
    (value % shards as u64) as usize
}

/// Fixed shard queues plus the lease table over them.
#[derive(Debug)]
pub struct ShardQueues {
    queues: Vec<VecDeque<usize>>,
    leases: HashMap<usize, Lease>,
    lease_duration: Duration,
}

impl ShardQueues {
    /// Creates `shards` empty queues; leases expire after `lease_duration`.
    pub fn new(shards: usize, lease_duration: Duration) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardQueues {
            queues: (0..shards).map(|_| VecDeque::new()).collect(),
            leases: HashMap::new(),
            lease_duration,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// Enqueues a job index on a shard (back of the queue).
    pub fn push(&mut self, shard: usize, job: usize) {
        let shard = shard % self.queues.len();
        self.queues[shard].push_back(job);
    }

    /// Jobs currently queued (not leased).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Jobs currently leased out.
    pub fn outstanding(&self) -> usize {
        self.leases.len()
    }

    /// Jobs still queued, per shard (for live metrics reporting).
    pub fn queued_per_shard(&self) -> Vec<usize> {
        self.queues.iter().map(VecDeque::len).collect()
    }

    /// Outstanding leases, per shard (for live metrics reporting).
    pub fn leased_per_shard(&self) -> Vec<usize> {
        let shards = self.queues.len();
        let mut counts = vec![0usize; shards];
        for lease in self.leases.values() {
            counts[lease.shard % shards] += 1;
        }
        counts
    }

    /// Whether no work remains: every queue empty and no lease outstanding.
    pub fn is_drained(&self) -> bool {
        self.queued() == 0 && self.leases.is_empty()
    }

    /// Returns expired leases to their shard queues (front, so re-offered
    /// jobs run before fresh tails) and reports how many were reclaimed.
    pub fn reap_expired(&mut self, now: Instant) -> usize {
        let expired: Vec<usize> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.expires <= now)
            .map(|(&job, _)| job)
            .collect();
        for job in &expired {
            let lease = self.leases.remove(job).expect("collected above");
            self.queues[lease.shard].push_front(*job);
        }
        expired.len()
    }

    /// Returns every lease held by `worker` to its shard queue and reports
    /// which job indices were released (sorted, so callers journal them
    /// deterministically). This is both the disconnect path — a dropped
    /// connection re-offers immediately, without waiting for the deadline —
    /// and the re-Hello reclaim path: a worker reconnecting after a network
    /// failure gets its dead connection's leases freed at handshake time.
    pub fn release_worker(&mut self, worker: &str) -> Vec<usize> {
        let mut held: Vec<usize> = self
            .leases
            .iter()
            .filter(|(_, lease)| lease.worker == worker)
            .map(|(&job, _)| job)
            .collect();
        held.sort_unstable();
        for job in &held {
            let lease = self.leases.remove(job).expect("collected above");
            self.queues[lease.shard].push_front(*job);
        }
        held
    }

    /// Pops up to `max` jobs for `worker` (preferring its own shard's front,
    /// then stealing from the back of the most loaded other shard), leasing
    /// each until `now + lease_duration`. Expired leases are reaped first.
    pub fn pop_for(&mut self, worker: &str, shard: usize, max: usize, now: Instant) -> Vec<usize> {
        self.reap_expired(now);
        let own = shard % self.queues.len();
        let mut taken = Vec::new();
        while taken.len() < max {
            let (from, job) = if let Some(job) = self.queues[own].pop_front() {
                (own, job)
            } else {
                // Steal from the back of the most loaded sibling.
                let victim = (0..self.queues.len())
                    .filter(|&s| s != own && !self.queues[s].is_empty())
                    .max_by_key(|&s| self.queues[s].len());
                match victim {
                    Some(s) => (s, self.queues[s].pop_back().expect("non-empty victim")),
                    None => break,
                }
            };
            self.leases.insert(
                job,
                Lease {
                    shard: from,
                    worker: worker.to_string(),
                    expires: now + self.lease_duration,
                },
            );
            taken.push(job);
        }
        taken
    }

    /// Completes a leased job (a result arrived). Returns the released
    /// lease, or `None` if the job was not leased — e.g. a slow worker
    /// delivering after its lease expired and the job was re-offered.
    pub fn complete(&mut self, job: usize) -> Option<Lease> {
        self.leases.remove(&job)
    }

    /// The lease on a job, if any.
    pub fn lease(&self, job: usize) -> Option<&Lease> {
        self.leases.get(&job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queues(shards: usize) -> ShardQueues {
        ShardQueues::new(shards, Duration::from_secs(30))
    }

    #[test]
    fn fingerprint_sharding_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for fp in ["00ff00ff00ff00ff", "cbf29ce484222325", "not-hex-at-all"] {
                let s = shard_of_fingerprint(fp, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of_fingerprint(fp, shards), "stable");
            }
        }
        // Distinct prefixes land on distinct shards often enough to spread
        // load: over 256 synthetic fingerprints and 8 shards, every shard
        // gets something.
        let mut seen = vec![false; 8];
        for i in 0..256u64 {
            let fp = format!("{:016x}", i.wrapping_mul(0x9e3779b97f4a7c15));
            seen[shard_of_fingerprint(&fp, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards populated: {seen:?}");
    }

    #[test]
    fn own_shard_first_then_steal_from_most_loaded() {
        let mut q = queues(3);
        q.push(0, 10);
        q.push(1, 20);
        q.push(1, 21);
        q.push(1, 22);
        q.push(2, 30);
        let now = Instant::now();
        // Own shard drains first...
        assert_eq!(q.pop_for("w0", 0, 1, now), vec![10]);
        // ...then the most loaded sibling's *back*.
        assert_eq!(q.pop_for("w0", 0, 1, now), vec![22]);
        assert_eq!(q.outstanding(), 2);
        assert_eq!(q.queued(), 3);
    }

    #[test]
    fn batch_pop_spans_shards_and_leases_everything() {
        let mut q = queues(2);
        for job in 0..5 {
            q.push(job % 2, job);
        }
        let taken = q.pop_for("w1", 1, 10, Instant::now());
        assert_eq!(taken.len(), 5);
        assert_eq!(q.queued(), 0);
        assert_eq!(q.outstanding(), 5);
        assert!(!q.is_drained(), "leased jobs still count as work");
        for job in taken {
            assert_eq!(q.lease(job).unwrap().worker, "w1");
            q.complete(job);
        }
        assert!(q.is_drained());
    }

    #[test]
    fn disconnect_requeues_at_the_front() {
        let mut q = queues(1);
        q.push(0, 1);
        q.push(0, 2);
        q.push(0, 3);
        let now = Instant::now();
        assert_eq!(q.pop_for("dead", 0, 2, now), vec![1, 2]);
        assert_eq!(q.release_worker("dead"), vec![1, 2]);
        assert_eq!(q.outstanding(), 0);
        // Re-offered jobs come back before the untouched tail.
        let next = q.pop_for("alive", 0, 3, now);
        assert_eq!(next.len(), 3);
        assert!(next.contains(&1) && next.contains(&2) && next.contains(&3));
        assert_ne!(next[0], 3, "requeued jobs precede the tail");
    }

    #[test]
    fn expired_leases_are_reaped_and_reoffered() {
        let mut q = ShardQueues::new(1, Duration::from_millis(5));
        q.push(0, 7);
        let start = Instant::now();
        assert_eq!(q.pop_for("hung", 0, 1, start), vec![7]);
        // Before the deadline nothing is re-offered.
        assert!(q.pop_for("fast", 0, 1, start).is_empty());
        // After the deadline the job moves to the requester.
        let later = start + Duration::from_millis(10);
        assert_eq!(q.pop_for("fast", 0, 1, later), vec![7]);
        assert_eq!(q.lease(7).unwrap().worker, "fast");
        // The hung worker's late completion is recognisable: the lease now
        // belongs to someone else only if it was re-leased; `complete`
        // releases whoever holds it.
        assert!(q.complete(7).is_some());
        assert!(q.is_drained());
    }

    #[test]
    fn complete_on_an_unleased_job_is_a_no_op() {
        let mut q = queues(2);
        assert!(q.complete(99).is_none());
        assert!(q.is_drained());
    }
}
