//! Packet-trace sidecar: the `<store>.trace.jsonl` companion file.
//!
//! Like the timings sidecar, trace events are **observations** riding next
//! to the store, never inside it: the deterministic store stays
//! byte-identical whether tracing ran or not (the zero-perturbation
//! contract), and the sidecar itself is an accumulating append-only log
//! whose record order depends on job completion order. Each record carries
//! the owning job's fingerprint, so renderers group lifecycles per job
//! regardless of interleaving.
//!
//! The runner stays domain-agnostic: a [`TraceRecord`] is just "job fp +
//! packet + cycle + named lifecycle stage"; `surepath-core` converts the
//! engine's typed trace events into these records.

use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// One packet-lifecycle event of one job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The owning job's fingerprint.
    pub fp: String,
    /// Packet id within that job's simulation.
    pub packet: u64,
    /// Simulation cycle of the event.
    pub cycle: u64,
    /// Lifecycle stage name: `inject`, `grant`, `hop`, `deliver`, `block`.
    pub event: String,
    /// The switch involved.
    pub switch: u64,
    /// Switch-to-switch hops taken so far.
    pub hops: u64,
    /// Escape-tree hops taken so far.
    pub escape_hops: u64,
}

/// The trace sidecar path of a result store:
/// `results/grid.jsonl` → `results/grid.trace.jsonl`.
pub fn trace_path(store: &Path) -> PathBuf {
    store.with_extension("trace.jsonl")
}

/// An append-only packet-trace log.
#[derive(Debug)]
pub struct TraceLog {
    writer: BufWriter<File>,
}

impl TraceLog {
    /// Opens (or creates) the log at `path` for appending.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(TraceLog {
            writer: BufWriter::new(file),
        })
    }

    /// Appends one trace record (buffered; call [`TraceLog::flush`] after a
    /// job's batch — traces are high-volume, flushing per record would make
    /// the sidecar the hot path).
    pub fn append(&mut self, record: &TraceRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record).expect("trace record serializes");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Flushes buffered records to disk.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }
}

/// Loads every parseable trace record from `path`, in file order.
/// Unparseable lines (a truncated tail) are skipped.
pub fn load_trace(path: &Path) -> std::io::Result<Vec<TraceRecord>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<TraceRecord>(l).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_trace(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("surepath-runner-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.trace.jsonl", std::process::id()))
    }

    fn record(packet: u64, cycle: u64, event: &str) -> TraceRecord {
        TraceRecord {
            fp: "aaaa".into(),
            packet,
            cycle,
            event: event.into(),
            switch: 3,
            hops: 1,
            escape_hops: 0,
        }
    }

    #[test]
    fn trace_path_derives_from_the_store_path() {
        assert_eq!(
            trace_path(Path::new("results/grid.jsonl")),
            PathBuf::from("results/grid.trace.jsonl")
        );
    }

    #[test]
    fn append_load_round_trips_and_tolerates_corruption() {
        let path = temp_trace("round-trip");
        let _ = std::fs::remove_file(&path);
        let records = vec![
            record(0, 10, "inject"),
            record(0, 40, "grant"),
            record(0, 90, "deliver"),
        ];
        {
            let mut log = TraceLog::open(&path).unwrap();
            for r in &records {
                log.append(r).unwrap();
            }
            log.flush().unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"fp\":\"cccc\",\"pack").unwrap();
        }
        let loaded = load_trace(&path).unwrap();
        assert_eq!(loaded, records);
        let _ = std::fs::remove_file(&path);
    }
}
