//! Campaign progress reporting.
//!
//! All output goes to **stderr** so stdout stays clean for piped results.
//! The reporter is driven from the executor's single consumer thread, so it
//! needs no synchronisation.

use std::io::Write;
use std::time::Instant;

/// Prints per-job progress lines and a final summary.
#[derive(Debug)]
pub struct ProgressReporter {
    total: usize,
    skipped: usize,
    done: usize,
    failed: usize,
    started: Instant,
    enabled: bool,
}

impl ProgressReporter {
    /// Creates a reporter for a campaign of `total` jobs, `skipped` of which
    /// were already complete in the store. When `enabled` is false the
    /// reporter stays silent.
    pub fn new(total: usize, skipped: usize, enabled: bool) -> Self {
        let reporter = ProgressReporter {
            total,
            skipped,
            done: 0,
            failed: 0,
            started: Instant::now(),
            enabled,
        };
        if enabled && skipped > 0 {
            eprintln!("[{skipped}/{total}] already complete in the store, skipping");
        }
        reporter
    }

    /// Records one finished job.
    pub fn job_finished(&mut self, label: &str, ok: bool) {
        self.done += 1;
        if !ok {
            self.failed += 1;
        }
        if self.enabled {
            let position = self.skipped + self.done;
            let status = if ok { "done" } else { "FAILED" };
            eprintln!("[{position}/{}] {status}  {label}", self.total);
            let _ = std::io::stderr().flush();
        }
    }

    /// Prints the campaign summary and returns (executed, failed).
    pub fn finish(self) -> (usize, usize) {
        if self.enabled {
            let secs = self.started.elapsed().as_secs_f64();
            let rate = if secs > 0.0 {
                self.done as f64 / secs
            } else {
                0.0
            };
            eprintln!(
                "campaign: {} executed ({} failed), {} skipped, {:.1}s ({rate:.2} jobs/s)",
                self.done, self.failed, self.skipped, secs
            );
        }
        (self.done, self.failed)
    }
}
