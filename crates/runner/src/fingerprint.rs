//! Job fingerprinting: a stable identity for every campaign grid cell.
//!
//! The fingerprint is an FNV-1a 64-bit hash of the job's canonical compact
//! JSON. It is stable across processes and platforms (unlike
//! `std::collections::hash_map::DefaultHasher`, which is randomly keyed),
//! which is what lets a restarted campaign recognise completed jobs in the
//! store.
//!
//! Canonical form drops `null` fields: an unset optional dimension
//! fingerprints identically whether the field exists in the struct or not,
//! so — from this scheme onward — *adding* an optional field to [`JobSpec`]
//! does not invalidate the fingerprints of existing stores. (Adopting the
//! scheme was itself a one-time break: stores written when unset fields
//! were hashed as `null` re-run from scratch.)

use crate::spec::JobSpec;
use serde::Value;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over arbitrary bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The canonical serialized form of a job: compact JSON in declaration
/// field order (deterministic because the vendored serde preserves order),
/// with `null` (unset optional) fields removed.
pub fn canonical_job_json(job: &JobSpec) -> String {
    let mut value = serde::Serialize::serialize(job);
    if let Value::Object(fields) = &mut value {
        fields.retain(|(_, v)| !matches!(v, Value::Null));
    }
    serde_json::to_string(&value).expect("job serializes")
}

/// The job's fingerprint: 16 lowercase hex characters.
pub fn job_fingerprint(job: &JobSpec) -> String {
    format!("{:016x}", fnv1a64(canonical_job_json(job).as_bytes()))
}

/// The canonical serialized form of the *grid point* a job belongs to: like
/// [`canonical_job_json`] but with the `seed` field removed. Replicas of the
/// same point (same campaign cell, different seeds) share this form.
pub fn canonical_point_json(job: &JobSpec) -> String {
    let mut value = serde::Serialize::serialize(job);
    if let Value::Object(fields) = &mut value {
        fields.retain(|(name, v)| name != "seed" && !matches!(v, Value::Null));
    }
    serde_json::to_string(&value).expect("job serializes")
}

/// The point fingerprint ("fingerprint minus seed"): the stable identity of
/// a campaign grid point across its replicas. Reports group replica rows by
/// this, and `--diff` aligns the rows of two stores by it — including stores
/// written before `replicas` existed, where seeds were an explicit grid axis.
pub fn point_fingerprint(job: &JobSpec) -> String {
    format!("{:016x}", fnv1a64(canonical_point_json(job).as_bytes()))
}

/// The point fingerprint with the RNG contract *also* removed: two points
/// that differ only in `rng` share this value. `--diff` uses it to recognise
/// "same experiment, different RNG contract" pairs and warn that their
/// metrics come from different draw-order distributions instead of silently
/// listing both sides as missing.
pub fn point_fingerprint_ignoring_rng(job: &JobSpec) -> String {
    let mut value = serde::Serialize::serialize(job);
    if let Value::Object(fields) = &mut value {
        fields.retain(|(name, v)| name != "seed" && name != "rng" && !matches!(v, Value::Null));
    }
    let json = serde_json::to_string(&value).expect("job serializes");
    format!("{:016x}", fnv1a64(json.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            campaign: "c".into(),
            sides: vec![4, 4],
            concentration: Some(4),
            mechanism: Some("polsp".into()),
            traffic: Some("uniform".into()),
            scenario: Some("none".into()),
            load: Some(0.3),
            seed,
            warmup: Some(100),
            measure: Some(200),
            ..JobSpec::default()
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_jobs() {
        assert_eq!(job_fingerprint(&job(1)), job_fingerprint(&job(1)));
        assert_ne!(job_fingerprint(&job(1)), job_fingerprint(&job(2)));
        assert_eq!(job_fingerprint(&job(1)).len(), 16);
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = job_fingerprint(&job(1));
        let mut j = job(1);
        j.load = Some(0.4);
        assert_ne!(job_fingerprint(&j), base);
        let mut j = job(1);
        j.scenario = Some("random:5:1".into());
        assert_ne!(job_fingerprint(&j), base);
        let mut j = job(1);
        j.warmup = None;
        assert_ne!(job_fingerprint(&j), base);
        let mut j = job(1);
        j.root = Some("max-degree".into());
        assert_ne!(job_fingerprint(&j), base);
        let mut j = job(1);
        j.kind = "batch".into();
        j.packets_per_server = Some(500);
        j.sample_window = Some(5000);
        let batch = job_fingerprint(&j);
        assert_ne!(batch, base);
        j.sample_window = Some(1000);
        assert_ne!(job_fingerprint(&j), batch, "sample window is identity");
    }

    #[test]
    fn canonical_json_omits_unset_optional_fields() {
        // Unset optionals must not appear at all: this is what keeps old
        // store fingerprints valid when JobSpec grows a new Option field.
        let mut j = job(1);
        j.vcs = None;
        j.root = None;
        let json = canonical_job_json(&j);
        assert!(!json.contains("null"), "{json}");
        assert!(!json.contains("root"), "{json}");
        assert!(!json.contains("packets_per_server"), "{json}");
        assert!(json.contains("\"mechanism\":\"polsp\""), "{json}");

        // A job predating the root/batch fields fingerprints identically to
        // one that has them unset.
        let legacy = r#"{"campaign":"c","kind":"rate","sides":[4,4],"concentration":4,"mechanism":"polsp","traffic":"uniform","scenario":"none","load":0.3,"seed":1,"warmup":100,"measure":200}"#;
        let legacy_job: JobSpec = serde_json::from_str(legacy).unwrap();
        let mut modern = job(1);
        modern.vcs = None;
        assert_eq!(job_fingerprint(&legacy_job), job_fingerprint(&modern));
    }

    #[test]
    fn point_fingerprints_identify_replicas_across_seeds() {
        // Same point, different seeds: same point fingerprint, different job
        // fingerprints.
        assert_eq!(point_fingerprint(&job(1)), point_fingerprint(&job(2)));
        assert_ne!(job_fingerprint(&job(1)), job_fingerprint(&job(2)));
        // Any non-seed dimension still separates points.
        let mut other = job(1);
        other.load = Some(0.4);
        assert_ne!(point_fingerprint(&other), point_fingerprint(&job(1)));
        let mut other = job(1);
        other.mechanism = Some("omnisp".into());
        assert_ne!(point_fingerprint(&other), point_fingerprint(&job(1)));
        // The canonical point form has no seed and no nulls.
        let json = canonical_point_json(&job(7));
        assert!(!json.contains("seed"), "{json}");
        assert!(!json.contains("null"), "{json}");
    }

    #[test]
    fn rng_contract_changes_fingerprints_only_when_set() {
        // None = v1: identical to a job predating the field, so every legacy
        // store fingerprint survives the refactor untouched.
        let legacy = r#"{"campaign":"c","kind":"rate","sides":[4,4],"concentration":4,"mechanism":"polsp","traffic":"uniform","scenario":"none","load":0.3,"seed":1,"warmup":100,"measure":200}"#;
        let legacy_job: JobSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(job_fingerprint(&legacy_job), job_fingerprint(&job(1)));
        assert_eq!(point_fingerprint(&legacy_job), point_fingerprint(&job(1)));

        // Some("v2") fingerprints differently — a v2 store never collides
        // with a v1 store of the same grid.
        let mut v2 = job(1);
        v2.rng = Some("v2".into());
        assert_ne!(job_fingerprint(&v2), job_fingerprint(&job(1)));
        assert_ne!(point_fingerprint(&v2), point_fingerprint(&job(1)));

        // But the rng-blind point fingerprint pairs them up (the --diff
        // mismatch warning keys on this).
        assert_eq!(
            point_fingerprint_ignoring_rng(&v2),
            point_fingerprint_ignoring_rng(&job(1))
        );
        // And it remains the plain point fingerprint for rng-free jobs with
        // respect to every *other* dimension.
        let mut other = job(1);
        other.load = Some(0.4);
        assert_ne!(
            point_fingerprint_ignoring_rng(&other),
            point_fingerprint_ignoring_rng(&job(1))
        );
    }

    #[test]
    fn fnv_reference_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
