//! Job fingerprinting: a stable identity for every campaign grid cell.
//!
//! The fingerprint is an FNV-1a 64-bit hash of the job's canonical compact
//! JSON. It is stable across processes and platforms (unlike
//! `std::collections::hash_map::DefaultHasher`, which is randomly keyed),
//! which is what lets a restarted campaign recognise completed jobs in the
//! store.

use crate::spec::JobSpec;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over arbitrary bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The canonical serialized form of a job (compact JSON, declaration field
/// order — deterministic because the vendored serde preserves order).
pub fn canonical_job_json(job: &JobSpec) -> String {
    serde_json::to_string(job).expect("job serializes")
}

/// The job's fingerprint: 16 lowercase hex characters.
pub fn job_fingerprint(job: &JobSpec) -> String {
    format!("{:016x}", fnv1a64(canonical_job_json(job).as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            campaign: "c".into(),
            kind: "rate".into(),
            sides: vec![4, 4],
            concentration: Some(4),
            mechanism: Some("polsp".into()),
            traffic: Some("uniform".into()),
            scenario: Some("none".into()),
            load: Some(0.3),
            seed,
            vcs: None,
            warmup: Some(100),
            measure: Some(200),
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_jobs() {
        assert_eq!(job_fingerprint(&job(1)), job_fingerprint(&job(1)));
        assert_ne!(job_fingerprint(&job(1)), job_fingerprint(&job(2)));
        assert_eq!(job_fingerprint(&job(1)).len(), 16);
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = job_fingerprint(&job(1));
        let mut j = job(1);
        j.load = Some(0.4);
        assert_ne!(job_fingerprint(&j), base);
        let mut j = job(1);
        j.scenario = Some("random:5:1".into());
        assert_ne!(job_fingerprint(&j), base);
        let mut j = job(1);
        j.warmup = None;
        assert_ne!(job_fingerprint(&j), base);
    }

    #[test]
    fn fnv_reference_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
