//! The resumable JSONL result store.
//!
//! Every completed job becomes one JSON line:
//!
//! ```text
//! {"fp":"<16-hex fingerprint>","status":"ok","job":{...},"result":{...}}
//! {"fp":"<16-hex fingerprint>","status":"failed","job":{...},"error":"..."}
//! ```
//!
//! Records are **appended and flushed as jobs finish**, so an interrupted
//! campaign keeps everything it has already paid for. On reopen the store
//! indexes the `ok` fingerprints; the campaign driver skips those jobs and
//! re-runs only the missing (or previously failed) ones. A truncated final
//! line — the signature of a hard kill mid-write — is tolerated and simply
//! re-run.
//!
//! After a campaign completes, [`ResultStore::finalize`] rewrites the file
//! in canonical grid order (atomically, via a temp file + rename). Since
//! record contents are deterministic, two runs of the same spec produce
//! **byte-identical** stores, whatever the thread scheduling was.

use crate::fingerprint::job_fingerprint;
use crate::spec::JobSpec;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// One stored record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StoreRecord {
    /// The job fingerprint (see [`crate::fingerprint`]).
    pub fp: String,
    /// `"ok"` or `"failed"`.
    pub status: String,
    /// The job that produced this record.
    pub job: JobSpec,
    /// The result payload (present when `status == "ok"`).
    pub result: Option<Value>,
    /// The failure message (present when `status == "failed"`).
    pub error: Option<String>,
}

/// An append-only, fingerprint-indexed JSONL result store.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    writer: BufWriter<File>,
    /// fingerprint → record, last-writer-wins (an `ok` overwrites a stale
    /// `failed` from an earlier run).
    records: HashMap<String, StoreRecord>,
    /// Lines that could not be parsed when reopening (corruption tally).
    pub corrupt_lines: usize,
}

impl ResultStore {
    /// Opens (or creates) the store at `path`, indexing existing records.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut records = HashMap::new();
        let mut corrupt_lines = 0;
        match std::fs::read_to_string(path) {
            Ok(existing) => {
                for line in existing.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match serde_json::from_str::<StoreRecord>(line) {
                        Ok(record) => {
                            // `ok` beats `failed`; otherwise last wins.
                            let keep_old =
                                records.get(&record.fp).is_some_and(|old: &StoreRecord| {
                                    old.status == "ok" && record.status != "ok"
                                });
                            if !keep_old {
                                records.insert(record.fp.clone(), record);
                            }
                        }
                        Err(_) => corrupt_lines += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(ResultStore {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            records,
            corrupt_lines,
        })
    }

    /// Whether a job with this fingerprint already completed successfully.
    pub fn is_complete(&self, fingerprint: &str) -> bool {
        self.records
            .get(fingerprint)
            .is_some_and(|r| r.status == "ok")
    }

    /// Number of successfully completed records.
    pub fn completed_count(&self) -> usize {
        self.records.values().filter(|r| r.status == "ok").count()
    }

    /// The record for a fingerprint, if any.
    pub fn record(&self, fingerprint: &str) -> Option<&StoreRecord> {
        self.records.get(fingerprint)
    }

    /// All indexed records (unordered).
    pub fn records(&self) -> impl Iterator<Item = &StoreRecord> {
        self.records.values()
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, record: StoreRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(&record).expect("record serializes");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        // Flush per record: an interrupted campaign must keep what finished.
        self.writer.flush()?;
        self.records.insert(record.fp.clone(), record);
        Ok(())
    }

    /// Streams one successful result to disk.
    pub fn append_ok(&mut self, job: &JobSpec, result: Value) -> std::io::Result<()> {
        self.append(StoreRecord {
            fp: job_fingerprint(job),
            status: "ok".to_string(),
            job: job.clone(),
            result: Some(result),
            error: None,
        })
    }

    /// Streams one failure to disk. Failed jobs are *not* treated as
    /// complete: a later run retries them.
    pub fn append_failed(&mut self, job: &JobSpec, error: String) -> std::io::Result<()> {
        self.append(StoreRecord {
            fp: job_fingerprint(job),
            status: "failed".to_string(),
            job: job.clone(),
            result: None,
            error: Some(error),
        })
    }

    /// Rewrites the store in canonical order — `jobs` order for `ok`
    /// records, then still-failing jobs in the same order — dropping
    /// duplicates and corruption. Atomic (temp file + rename). Makes
    /// completed campaign stores byte-identical across runs.
    pub fn finalize(&mut self, jobs: &[JobSpec]) -> std::io::Result<()> {
        let mut ordered: Vec<&StoreRecord> = Vec::new();
        let mut listed = std::collections::HashSet::new();
        for status in ["ok", "failed"] {
            for job in jobs {
                let fp = job_fingerprint(job);
                if let Some(record) = self.records.get(&fp) {
                    if record.status == status && listed.insert(fp) {
                        ordered.push(record);
                    }
                }
            }
        }
        // Records for jobs outside the current grid (e.g. the spec shrank)
        // are preserved after the grid's own, in fingerprint order.
        let mut extras: Vec<&StoreRecord> = self
            .records
            .values()
            .filter(|r| !listed.contains(&r.fp))
            .collect();
        extras.sort_by(|a, b| a.fp.cmp(&b.fp));
        ordered.extend(extras);

        let mut text = String::new();
        for record in &ordered {
            text.push_str(&serde_json::to_string(record).expect("record serializes"));
            text.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &self.path)?;
        // Reopen the append handle on the renamed file.
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.writer = BufWriter::new(file);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            campaign: "store-test".into(),
            kind: "rate".into(),
            sides: vec![4, 4],
            concentration: None,
            mechanism: Some("polsp".into()),
            traffic: Some("uniform".into()),
            scenario: Some("none".into()),
            load: Some(0.5),
            seed,
            vcs: None,
            warmup: None,
            measure: None,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("surepath-runner-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn append_then_reopen_indexes_completions() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            store
                .append_ok(&job(1), serde_json::to_value(&1u64).unwrap())
                .unwrap();
            store.append_failed(&job(2), "sim stalled".into()).unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        assert!(store.is_complete(&job_fingerprint(&job(1))));
        assert!(
            !store.is_complete(&job_fingerprint(&job(2))),
            "failures are retried"
        );
        assert!(!store.is_complete(&job_fingerprint(&job(3))));
        assert_eq!(store.completed_count(), 1);
        assert_eq!(store.corrupt_lines, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_trailing_line_is_tolerated() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append_ok(&job(1), Value::Null).unwrap();
        }
        // Simulate a hard kill mid-write: a partial record at the end.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"fp\":\"deadbeef\",\"status\":\"o").unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.completed_count(), 1);
        assert_eq!(store.corrupt_lines, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ok_records_shadow_stale_failures() {
        let path = temp_path("shadow");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            store
                .append_failed(&job(5), "first try died".into())
                .unwrap();
            store.append_ok(&job(5), Value::Bool(true)).unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        let fp = job_fingerprint(&job(5));
        assert!(store.is_complete(&fp));
        assert_eq!(store.record(&fp).unwrap().status, "ok");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finalize_produces_canonical_byte_identical_files() {
        let jobs: Vec<JobSpec> = (0..6).map(job).collect();
        let render = |order: &[usize]| -> String {
            let path = temp_path(&format!("canon-{}", order[0]));
            let _ = std::fs::remove_file(&path);
            let mut store = ResultStore::open(&path).unwrap();
            for &i in order {
                store
                    .append_ok(&jobs[i], serde_json::to_value(&(i as u64 * 10)).unwrap())
                    .unwrap();
            }
            store.finalize(&jobs).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            text
        };
        // Two different completion orders must serialize identically.
        let a = render(&[0, 1, 2, 3, 4, 5]);
        let b = render(&[5, 3, 1, 4, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 6);
    }

    #[test]
    fn finalize_keeps_out_of_grid_records() {
        let path = temp_path("extras");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        store.append_ok(&job(1), Value::Null).unwrap();
        store.append_ok(&job(99), Value::Null).unwrap();
        store.finalize(&[job(1)]).unwrap();
        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.completed_count(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
