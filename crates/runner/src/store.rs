//! The resumable JSONL result store.
//!
//! Every completed job becomes one JSON line:
//!
//! ```text
//! {"fp":"<16-hex fingerprint>","status":"ok","job":{...},"result":{...}}
//! {"fp":"<16-hex fingerprint>","status":"failed","job":{...},"error":"..."}
//! ```
//!
//! Records are **appended and flushed as jobs finish**, so an interrupted
//! campaign keeps everything it has already paid for. On reopen the store
//! indexes the `ok` fingerprints; the campaign driver skips those jobs and
//! re-runs only the missing (or previously failed) ones. A truncated final
//! line — the signature of a hard kill mid-write — is tolerated and simply
//! re-run.
//!
//! After a campaign completes, [`ResultStore::finalize`] rewrites the file
//! in canonical grid order (atomically, via a temp file + rename). Since
//! record contents are deterministic, two runs of the same spec produce
//! **byte-identical** stores, whatever the thread scheduling was.
//!
//! # Schema versioning
//!
//! The record line layout above is [`STORE_SCHEMA_VERSION`] and evolves
//! additively: new payload fields (e.g. the `latency_hist` sparse histogram
//! a result may carry since schema 1 rev "latency observatory") appear as
//! extra keys, and readers treat an absent key as `None`. Payloads that need
//! their own evolution carry an embedded version tag — the latency histogram
//! serializes as `{"v":1,"b":[[bucket,count],...]}` and readers reject
//! unknown `"v"` values instead of misdecoding. Both rules together mean a
//! store written before a field existed still loads, reports and diffs
//! exactly as it always did, while rewriting *never* reorders or rewrites
//! old records' bytes.
//!
//! The engine-counter field (schema 1 rev "observability") follows both
//! rules: an `ok` result may carry a `counters` key — the sparse
//! `{"v":1,"c":[[slot,count],...]}` encoding of `hyperx_sim`'s
//! `CounterRegistry`, occupied slots ascending so the bytes are a function
//! of the counts alone — and `--report --counters` merges the registries
//! by exact addition, skipping records without the key. Pre-observability
//! stores therefore report, diff and merge unchanged, and a mixed-era
//! merged store stays byte-deterministic.
//!
//! Observability sidecars (`<store>.timings.jsonl`, `<store>.manifest.jsonl`,
//! `<store>.trace.jsonl`) live *next to* the store, never inside it: the
//! store file holds results only, which is what keeps its bytes identical
//! with tracing on or off.

use crate::fingerprint::job_fingerprint;
use crate::spec::JobSpec;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Version of the store's record line layout (see the module docs: the
/// layout evolves additively, so this only bumps on a breaking change that
/// old readers could not ignore).
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// One stored record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StoreRecord {
    /// The job fingerprint (see [`crate::fingerprint`]).
    pub fp: String,
    /// `"ok"` or `"failed"`.
    pub status: String,
    /// The job that produced this record.
    pub job: JobSpec,
    /// The result payload (present when `status == "ok"`).
    pub result: Option<Value>,
    /// The failure message (present when `status == "failed"`).
    pub error: Option<String>,
}

/// The indexed contents of a store file: records by fingerprint, first-seen
/// order, and the corrupt-line tally.
type IndexedRecords = (HashMap<String, StoreRecord>, Vec<String>, usize);

/// An append-only, fingerprint-indexed JSONL result store.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    /// `None` for read-only stores (see [`ResultStore::open_read_only`]).
    writer: Option<BufWriter<File>>,
    /// fingerprint → record, last-writer-wins (an `ok` overwrites a stale
    /// `failed` from an earlier run).
    records: HashMap<String, StoreRecord>,
    /// Fingerprints in first-seen (file) order, so consumers that render
    /// reports can iterate deterministically. In a finalized store this is
    /// the canonical grid order.
    order: Vec<String>,
    /// Lines that could not be parsed when reopening (corruption tally).
    pub corrupt_lines: usize,
}

impl ResultStore {
    fn index(path: &Path, tolerate_missing: bool) -> std::io::Result<IndexedRecords> {
        let mut records = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut corrupt_lines = 0;
        match std::fs::read_to_string(path) {
            Ok(existing) => {
                for line in existing.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match serde_json::from_str::<StoreRecord>(line) {
                        Ok(record) => {
                            // `ok` beats `failed`; otherwise last wins.
                            let keep_old =
                                records.get(&record.fp).is_some_and(|old: &StoreRecord| {
                                    old.status == "ok" && record.status != "ok"
                                });
                            if !keep_old {
                                if !records.contains_key(&record.fp) {
                                    order.push(record.fp.clone());
                                }
                                records.insert(record.fp.clone(), record);
                            }
                        }
                        Err(_) => corrupt_lines += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && tolerate_missing => {}
            Err(e) => return Err(e),
        }
        Ok((records, order, corrupt_lines))
    }

    /// Opens (or creates) the store at `path` for appending, indexing
    /// existing records.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let (records, order, corrupt_lines) = Self::index(path, true)?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(ResultStore {
            path: path.to_path_buf(),
            writer: Some(BufWriter::new(file)),
            records,
            order,
            corrupt_lines,
        })
    }

    /// Opens the store at `path` read-only: no file is created, no write
    /// access is required (archived stores on read-only media report fine),
    /// and a missing file is an error rather than an empty store. Appending
    /// or finalizing a read-only store fails.
    pub fn open_read_only(path: &Path) -> std::io::Result<Self> {
        let (records, order, corrupt_lines) = Self::index(path, false)?;
        Ok(ResultStore {
            path: path.to_path_buf(),
            writer: None,
            records,
            order,
            corrupt_lines,
        })
    }

    /// Whether a job with this fingerprint already completed successfully.
    pub fn is_complete(&self, fingerprint: &str) -> bool {
        self.records
            .get(fingerprint)
            .is_some_and(|r| r.status == "ok")
    }

    /// Number of successfully completed records.
    pub fn completed_count(&self) -> usize {
        self.records.values().filter(|r| r.status == "ok").count()
    }

    /// The record for a fingerprint, if any.
    pub fn record(&self, fingerprint: &str) -> Option<&StoreRecord> {
        self.records.get(fingerprint)
    }

    /// All indexed records (unordered).
    pub fn records(&self) -> impl Iterator<Item = &StoreRecord> {
        self.records.values()
    }

    /// All indexed records in first-seen (file) order — the canonical grid
    /// order for a finalized store. Report renderers must use this (not
    /// [`ResultStore::records`]) so their output is deterministic.
    pub fn records_in_order(&self) -> impl Iterator<Item = &StoreRecord> {
        self.order.iter().filter_map(|fp| self.records.get(fp))
    }

    /// The store's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, record: StoreRecord) -> std::io::Result<()> {
        let Some(writer) = &mut self.writer else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "store was opened read-only",
            ));
        };
        let line = serde_json::to_string(&record).expect("record serializes");
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        // Flush per record: an interrupted campaign must keep what finished.
        writer.flush()?;
        if !self.records.contains_key(&record.fp) {
            self.order.push(record.fp.clone());
        }
        self.records.insert(record.fp.clone(), record);
        Ok(())
    }

    /// Streams one successful result to disk.
    pub fn append_ok(&mut self, job: &JobSpec, result: Value) -> std::io::Result<()> {
        self.append(StoreRecord {
            fp: job_fingerprint(job),
            status: "ok".to_string(),
            job: job.clone(),
            result: Some(result),
            error: None,
        })
    }

    /// Streams one failure to disk. Failed jobs are *not* treated as
    /// complete: a later run retries them.
    pub fn append_failed(&mut self, job: &JobSpec, error: String) -> std::io::Result<()> {
        self.append(StoreRecord {
            fp: job_fingerprint(job),
            status: "failed".to_string(),
            job: job.clone(),
            result: None,
            error: Some(error),
        })
    }

    /// Rewrites the store in canonical order — `jobs` order for `ok`
    /// records, then still-failing jobs in the same order — dropping
    /// duplicates and corruption. Atomic (temp file + rename). Makes
    /// completed campaign stores byte-identical across runs.
    pub fn finalize(&mut self, jobs: &[JobSpec]) -> std::io::Result<()> {
        if self.writer.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "store was opened read-only",
            ));
        }
        let mut ordered: Vec<&StoreRecord> = Vec::new();
        let mut listed = std::collections::HashSet::new();
        for status in ["ok", "failed"] {
            for job in jobs {
                let fp = job_fingerprint(job);
                if let Some(record) = self.records.get(&fp) {
                    if record.status == status && listed.insert(fp) {
                        ordered.push(record);
                    }
                }
            }
        }
        // Records outside the current grid — other campaigns sharing the
        // store, or a spec that shrank — are preserved after the grid's own,
        // grouped by (campaign, kind) but otherwise in first-seen order: for
        // a campaign that already finalized, that is its own canonical grid
        // order, so finalizing campaign B never scrambles campaign A's
        // report order.
        let mut extras: Vec<&StoreRecord> = self
            .order
            .iter()
            .filter_map(|fp| self.records.get(fp))
            .filter(|r| !listed.contains(&r.fp))
            .collect();
        extras.sort_by_key(|r| (r.job.campaign.clone(), r.job.kind.clone()));
        ordered.extend(extras);

        let canonical_order: Vec<String> = ordered.iter().map(|r| r.fp.clone()).collect();

        let mut text = String::new();
        for record in &ordered {
            text.push_str(&serde_json::to_string(record).expect("record serializes"));
            text.push('\n');
        }
        let tmp = self.path.with_extension("jsonl.tmp");
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &self.path)?;
        self.order = canonical_order;
        // Reopen the append handle on the renamed file.
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.writer = Some(BufWriter::new(file));
        Ok(())
    }
}

/// Groups records by their point fingerprint (job fingerprint minus the
/// seed): each returned entry is one campaign grid point with all of its
/// replica records, in the iteration order of `records` (first record of a
/// point fixes the point's position, replicas keep their relative order).
/// This is how report renderers and `--diff` recover the replication
/// structure from a flat store — it works equally for stores written with
/// the `replicas` dimension and for old stores with explicit seed grids.
pub fn group_replicas<'a>(
    records: impl IntoIterator<Item = &'a StoreRecord>,
) -> Vec<(String, Vec<&'a StoreRecord>)> {
    let mut order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<&StoreRecord>> = HashMap::new();
    for record in records {
        let point = crate::fingerprint::point_fingerprint(&record.job);
        if !groups.contains_key(&point) {
            order.push(point.clone());
        }
        groups.entry(point).or_default().push(record);
    }
    order
        .into_iter()
        .map(|point| {
            let replicas = groups.remove(&point).expect("grouped above");
            (point, replicas)
        })
        .collect()
}

/// What [`merge_stores`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeSummary {
    /// Records read across all input shards (post-dedup within each shard).
    pub read: usize,
    /// Records written to the merged store.
    pub written: usize,
    /// Records dropped because another shard had the same fingerprint
    /// (`ok` beats `failed`; among equals the earlier shard wins).
    pub duplicates: usize,
}

/// The content-based sort key used for merged stores: grid dimensions in
/// expansion order (campaign, kind, topology, mechanism, traffic, scenario,
/// root, VCs, load, seed, …), so a merged store reads like a finalized one
/// rather than hashing records into fingerprint order. Loads compare via
/// their bit pattern, which matches numeric order for the (0, 1] range the
/// validator enforces.
fn job_sort_key(job: &JobSpec) -> impl Ord + '_ {
    (
        (&job.campaign, &job.kind, &job.sides, job.concentration),
        (&job.mechanism, &job.traffic, &job.scenario, &job.root),
        (job.vcs, job.load.map(f64::to_bits), job.seed),
        (
            job.warmup,
            job.measure,
            job.packets_per_server,
            job.sample_window,
        ),
    )
}

/// Merges sharded result stores into one.
///
/// Campaigns can be split across processes or machines by giving each shard
/// its own store (fingerprints are machine-independent, so the records
/// compose). This reads every input shard, dedups by fingerprint (`ok` beats
/// `failed`; among records of equal status the earliest-listed shard wins)
/// and writes the union to `output` sorted by the jobs' grid dimensions —
/// a canonical, report-friendly order that does not depend on shard listing
/// order, so merging the same shards always produces identical bytes.
pub fn merge_stores(output: &Path, inputs: &[PathBuf]) -> std::io::Result<MergeSummary> {
    let mut merged: HashMap<String, StoreRecord> = HashMap::new();
    let mut read = 0;
    let mut duplicates = 0;
    for input in inputs {
        let shard = ResultStore::open_read_only(input)?;
        for record in shard.records_in_order() {
            read += 1;
            let keep_old = merged
                .get(&record.fp)
                .is_some_and(|old| !(old.status != "ok" && record.status == "ok"));
            if keep_old {
                duplicates += 1;
            } else {
                if merged.contains_key(&record.fp) {
                    duplicates += 1;
                }
                merged.insert(record.fp.clone(), record.clone());
            }
        }
    }
    let mut ordered: Vec<&StoreRecord> = merged.values().collect();
    ordered.sort_by(|a, b| {
        job_sort_key(&a.job)
            .cmp(&job_sort_key(&b.job))
            .then(a.fp.cmp(&b.fp))
    });
    let mut text = String::new();
    for record in &ordered {
        text.push_str(&serde_json::to_string(record).expect("record serializes"));
        text.push('\n');
    }
    if let Some(parent) = output.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = output.with_extension("jsonl.tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, output)?;
    Ok(MergeSummary {
        read,
        written: ordered.len(),
        duplicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seed: u64) -> JobSpec {
        JobSpec {
            campaign: "store-test".into(),
            sides: vec![4, 4],
            mechanism: Some("polsp".into()),
            traffic: Some("uniform".into()),
            scenario: Some("none".into()),
            load: Some(0.5),
            seed,
            ..JobSpec::default()
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("surepath-runner-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn append_then_reopen_indexes_completions() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            store
                .append_ok(&job(1), serde_json::to_value(&1u64).unwrap())
                .unwrap();
            store.append_failed(&job(2), "sim stalled".into()).unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        assert!(store.is_complete(&job_fingerprint(&job(1))));
        assert!(
            !store.is_complete(&job_fingerprint(&job(2))),
            "failures are retried"
        );
        assert!(!store.is_complete(&job_fingerprint(&job(3))));
        assert_eq!(store.completed_count(), 1);
        assert_eq!(store.corrupt_lines, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_trailing_line_is_tolerated() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append_ok(&job(1), Value::Null).unwrap();
        }
        // Simulate a hard kill mid-write: a partial record at the end.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"fp\":\"deadbeef\",\"status\":\"o").unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.completed_count(), 1);
        assert_eq!(store.corrupt_lines, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ok_records_shadow_stale_failures() {
        let path = temp_path("shadow");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            store
                .append_failed(&job(5), "first try died".into())
                .unwrap();
            store.append_ok(&job(5), Value::Bool(true)).unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        let fp = job_fingerprint(&job(5));
        assert!(store.is_complete(&fp));
        assert_eq!(store.record(&fp).unwrap().status, "ok");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finalize_produces_canonical_byte_identical_files() {
        let jobs: Vec<JobSpec> = (0..6).map(job).collect();
        let render = |order: &[usize]| -> String {
            let path = temp_path(&format!("canon-{}", order[0]));
            let _ = std::fs::remove_file(&path);
            let mut store = ResultStore::open(&path).unwrap();
            for &i in order {
                store
                    .append_ok(&jobs[i], serde_json::to_value(&(i as u64 * 10)).unwrap())
                    .unwrap();
            }
            store.finalize(&jobs).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            text
        };
        // Two different completion orders must serialize identically.
        let a = render(&[0, 1, 2, 3, 4, 5]);
        let b = render(&[5, 3, 1, 4, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 6);
    }

    #[test]
    fn read_only_open_needs_no_write_access_and_rejects_writes() {
        let path = temp_path("read-only");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append_ok(&job(1), Value::Null).unwrap();
        }
        let mut ro = ResultStore::open_read_only(&path).unwrap();
        assert_eq!(ro.completed_count(), 1);
        assert!(ro.append_ok(&job(2), Value::Null).is_err());
        assert!(ro.finalize(&[job(1)]).is_err());
        // A missing file is an error, not a silently created empty store.
        let missing = temp_path("read-only-missing");
        let _ = std::fs::remove_file(&missing);
        assert!(ResultStore::open_read_only(&missing).is_err());
        assert!(!missing.exists(), "read-only open must not create files");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn records_in_order_follows_file_order() {
        let path = temp_path("ordered");
        let _ = std::fs::remove_file(&path);
        let jobs: Vec<JobSpec> = [4u64, 1, 3].iter().map(|&s| job(s)).collect();
        {
            let mut store = ResultStore::open(&path).unwrap();
            for j in &jobs {
                store
                    .append_ok(j, serde_json::to_value(&j.seed).unwrap())
                    .unwrap();
            }
            let seeds: Vec<u64> = store.records_in_order().map(|r| r.job.seed).collect();
            assert_eq!(seeds, vec![4, 1, 3], "live store follows append order");
        }
        let reopened = ResultStore::open(&path).unwrap();
        let seeds: Vec<u64> = reopened.records_in_order().map(|r| r.job.seed).collect();
        assert_eq!(seeds, vec![4, 1, 3], "reopened store follows file order");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finalize_resets_iteration_to_canonical_grid_order() {
        let path = temp_path("ordered-final");
        let _ = std::fs::remove_file(&path);
        let jobs: Vec<JobSpec> = (1..=3).map(job).collect();
        let mut store = ResultStore::open(&path).unwrap();
        for j in jobs.iter().rev() {
            store.append_ok(j, Value::Null).unwrap();
        }
        store.finalize(&jobs).unwrap();
        let seeds: Vec<u64> = store.records_in_order().map(|r| r.job.seed).collect();
        assert_eq!(seeds, vec![1, 2, 3]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn merge_stores_combines_shards_deterministically() {
        let shard_a = temp_path("merge-a");
        let shard_b = temp_path("merge-b");
        let out_ab = temp_path("merge-out-ab");
        let out_ba = temp_path("merge-out-ba");
        for p in [&shard_a, &shard_b, &out_ab, &out_ba] {
            let _ = std::fs::remove_file(p);
        }
        {
            let mut a = ResultStore::open(&shard_a).unwrap();
            a.append_ok(&job(1), Value::Bool(true)).unwrap();
            a.append_failed(&job(2), "shard-a died".into()).unwrap();
            let mut b = ResultStore::open(&shard_b).unwrap();
            b.append_ok(&job(2), Value::Bool(true)).unwrap();
            b.append_ok(&job(3), Value::Bool(true)).unwrap();
        }
        let summary = merge_stores(&out_ab, &[shard_a.clone(), shard_b.clone()]).unwrap();
        assert_eq!(summary.read, 4);
        assert_eq!(summary.written, 3);
        assert_eq!(summary.duplicates, 1);

        let merged = ResultStore::open(&out_ab).unwrap();
        assert_eq!(merged.completed_count(), 3, "ok from shard b healed job 2");
        // Merged records come back in grid order (here: by seed), not in
        // fingerprint-hash order — reports over merged stores stay readable.
        let seeds: Vec<u64> = merged.records_in_order().map(|r| r.job.seed).collect();
        assert_eq!(seeds, vec![1, 2, 3]);

        // Shard listing order must not change the merged bytes.
        merge_stores(&out_ba, &[shard_b.clone(), shard_a.clone()]).unwrap();
        assert_eq!(
            std::fs::read(&out_ab).unwrap(),
            std::fs::read(&out_ba).unwrap()
        );
        for p in [&shard_a, &shard_b, &out_ab, &out_ba] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn group_replicas_preserves_point_order_and_gathers_seeds() {
        // Three points (loads), two replicas each, interleaved like a store
        // in completion order.
        let point = |load: f64, seed: u64| {
            let mut j = job(seed);
            j.load = Some(load);
            StoreRecord {
                fp: job_fingerprint(&j),
                status: "ok".into(),
                job: j,
                result: Some(Value::Null),
                error: None,
            }
        };
        let records = vec![
            point(0.1, 1),
            point(0.2, 1),
            point(0.1, 2),
            point(0.3, 1),
            point(0.2, 2),
            point(0.3, 2),
        ];
        let groups = group_replicas(&records);
        assert_eq!(groups.len(), 3);
        for (_, replicas) in &groups {
            assert_eq!(replicas.len(), 2);
            assert_eq!(
                replicas.iter().map(|r| r.job.seed).collect::<Vec<_>>(),
                vec![1, 2]
            );
        }
        // Point order follows the first appearance of each point.
        let loads: Vec<f64> = groups
            .iter()
            .map(|(_, replicas)| replicas[0].job.load.unwrap())
            .collect();
        assert_eq!(loads, vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn finalize_keeps_out_of_grid_records() {
        let path = temp_path("extras");
        let _ = std::fs::remove_file(&path);
        let mut store = ResultStore::open(&path).unwrap();
        store.append_ok(&job(1), Value::Null).unwrap();
        store.append_ok(&job(99), Value::Null).unwrap();
        store.finalize(&[job(1)]).unwrap();
        let reopened = ResultStore::open(&path).unwrap();
        assert_eq!(reopened.completed_count(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn finalizing_one_campaign_preserves_the_others_canonical_order() {
        // Two campaigns share a store (the figure binaries do this). After
        // campaign A finalizes in grid order and campaign B then runs and
        // finalizes, A's records must still read back in A's grid order —
        // report rendering depends on it.
        let path = temp_path("two-campaigns");
        let _ = std::fs::remove_file(&path);
        let job_in = |campaign: &str, seed: u64| JobSpec {
            campaign: campaign.into(),
            seed,
            ..job(seed)
        };
        let grid_a: Vec<JobSpec> = (1..=4).map(|s| job_in("a", s)).collect();
        let grid_b: Vec<JobSpec> = (1..=3).map(|s| job_in("b", s)).collect();
        let mut store = ResultStore::open(&path).unwrap();
        // Campaign A completes out of order, then finalizes canonically.
        for j in [&grid_a[2], &grid_a[0], &grid_a[3], &grid_a[1]] {
            store.append_ok(j, Value::Null).unwrap();
        }
        store.finalize(&grid_a).unwrap();
        // Campaign B completes out of order, then finalizes.
        for j in [&grid_b[1], &grid_b[2], &grid_b[0]] {
            store.append_ok(j, Value::Null).unwrap();
        }
        store.finalize(&grid_b).unwrap();

        let reopened = ResultStore::open(&path).unwrap();
        let a_seeds: Vec<u64> = reopened
            .records_in_order()
            .filter(|r| r.job.campaign == "a")
            .map(|r| r.job.seed)
            .collect();
        assert_eq!(a_seeds, vec![1, 2, 3, 4], "campaign A stays in grid order");
        let b_seeds: Vec<u64> = reopened
            .records_in_order()
            .filter(|r| r.job.campaign == "b")
            .map(|r| r.job.seed)
            .collect();
        assert_eq!(b_seeds, vec![1, 2, 3]);
        let _ = std::fs::remove_file(&path);
    }
}
