//! Shard-assignment manifests: the `<store>.manifest.jsonl` sidecar of a
//! distributed campaign.
//!
//! The result store records *finished* jobs; the manifest records
//! *assignments* — which worker/shard each job fingerprint was handed to,
//! and whether a result came back. That distinction is what lets `--report`
//! tell **missing** (never assigned anywhere) from **assigned elsewhere /
//! in-flight**, and lets a coordinator restarted after a crash re-offer
//! only unfinished fingerprints while keeping their shard affinity.
//!
//! Like the store, the manifest is append-only JSONL, flushed per record,
//! tolerant of a truncated final line, and indexed last-writer-wins on
//! reopen (`done` beats `assigned`).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Assignment states a manifest records.
pub const MANIFEST_ASSIGNED: &str = "assigned";
/// See [`MANIFEST_ASSIGNED`].
pub const MANIFEST_DONE: &str = "done";
/// A lease taken back before delivery — the worker's connection died or it
/// re-introduced itself (re-Hello) while the lease was still live. The job
/// is back in its shard queue; a later `assigned` line supersedes this.
pub const MANIFEST_RECLAIMED: &str = "reclaimed";

/// One manifest line: a job fingerprint's latest assignment.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManifestRecord {
    /// The job fingerprint (see [`crate::fingerprint`]).
    pub fp: String,
    /// The static shard the fingerprint partitions into.
    pub shard: usize,
    /// The worker the job was handed to (or that delivered the result).
    pub worker: String,
    /// `"assigned"` or `"done"`.
    pub status: String,
}

/// The manifest sidecar path of a result store:
/// `results/grid.jsonl` → `results/grid.manifest.jsonl`.
pub fn manifest_path(store: &Path) -> PathBuf {
    store.with_extension("manifest.jsonl")
}

/// An append-only, fingerprint-indexed shard-assignment manifest.
#[derive(Debug)]
pub struct ShardManifest {
    path: PathBuf,
    /// `None` for read-only manifests.
    writer: Option<BufWriter<File>>,
    /// fingerprint → latest record (`done` beats `assigned`).
    records: HashMap<String, ManifestRecord>,
    /// Fingerprints in first-seen order, for deterministic iteration.
    order: Vec<String>,
    /// Unparseable lines seen on reopen.
    pub corrupt_lines: usize,
}

impl ShardManifest {
    fn index(
        path: &Path,
        tolerate_missing: bool,
    ) -> std::io::Result<(HashMap<String, ManifestRecord>, Vec<String>, usize)> {
        let mut records = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut corrupt_lines = 0;
        match std::fs::read_to_string(path) {
            Ok(existing) => {
                for line in existing.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match serde_json::from_str::<ManifestRecord>(line) {
                        Ok(record) => {
                            // `done` is terminal; otherwise the latest
                            // assignment wins (a re-offered job's new worker).
                            let keep_old =
                                records.get(&record.fp).is_some_and(|old: &ManifestRecord| {
                                    old.status == MANIFEST_DONE && record.status != MANIFEST_DONE
                                });
                            if !keep_old {
                                if !records.contains_key(&record.fp) {
                                    order.push(record.fp.clone());
                                }
                                records.insert(record.fp.clone(), record);
                            }
                        }
                        Err(_) => corrupt_lines += 1,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound && tolerate_missing => {}
            Err(e) => return Err(e),
        }
        Ok((records, order, corrupt_lines))
    }

    /// Opens (or creates) the manifest at `path` for appending.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let (records, order, corrupt_lines) = Self::index(path, true)?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(ShardManifest {
            path: path.to_path_buf(),
            writer: Some(BufWriter::new(file)),
            records,
            order,
            corrupt_lines,
        })
    }

    /// Opens the manifest read-only; a missing file is an error.
    pub fn open_read_only(path: &Path) -> std::io::Result<Self> {
        let (records, order, corrupt_lines) = Self::index(path, false)?;
        Ok(ShardManifest {
            path: path.to_path_buf(),
            writer: None,
            records,
            order,
            corrupt_lines,
        })
    }

    /// The manifest's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, record: ManifestRecord) -> std::io::Result<()> {
        let Some(writer) = &mut self.writer else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "manifest was opened read-only",
            ));
        };
        let line = serde_json::to_string(&record).expect("manifest record serializes");
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        // Flush per record: assignments must survive a coordinator crash.
        writer.flush()?;
        // Index with the same rule reopen applies: `done` is terminal, a
        // stale re-assignment cannot resurrect an in-flight state.
        let keep_old = self
            .records
            .get(&record.fp)
            .is_some_and(|old| old.status == MANIFEST_DONE && record.status != MANIFEST_DONE);
        if !keep_old {
            if !self.records.contains_key(&record.fp) {
                self.order.push(record.fp.clone());
            }
            self.records.insert(record.fp.clone(), record);
        }
        Ok(())
    }

    /// Records that `fp` was handed to `worker` on `shard`.
    pub fn record_assigned(&mut self, fp: &str, shard: usize, worker: &str) -> std::io::Result<()> {
        self.append(ManifestRecord {
            fp: fp.to_string(),
            shard,
            worker: worker.to_string(),
            status: MANIFEST_ASSIGNED.to_string(),
        })
    }

    /// Records that `worker` delivered `fp`'s result.
    pub fn record_done(&mut self, fp: &str, shard: usize, worker: &str) -> std::io::Result<()> {
        self.append(ManifestRecord {
            fp: fp.to_string(),
            shard,
            worker: worker.to_string(),
            status: MANIFEST_DONE.to_string(),
        })
    }

    /// Records that `fp`'s lease to `worker` was taken back undelivered
    /// (disconnect or re-Hello reclaim) and the job re-queued on `shard`.
    pub fn record_reclaimed(
        &mut self,
        fp: &str,
        shard: usize,
        worker: &str,
    ) -> std::io::Result<()> {
        self.append(ManifestRecord {
            fp: fp.to_string(),
            shard,
            worker: worker.to_string(),
            status: MANIFEST_RECLAIMED.to_string(),
        })
    }

    /// The latest record for a fingerprint, if any.
    pub fn record(&self, fp: &str) -> Option<&ManifestRecord> {
        self.records.get(fp)
    }

    /// All indexed records in first-seen order.
    pub fn records_in_order(&self) -> impl Iterator<Item = &ManifestRecord> {
        self.order.iter().filter_map(|fp| self.records.get(fp))
    }

    /// Number of indexed fingerprints.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the manifest is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The fingerprints assigned to a worker but not (yet) delivered —
    /// "in-flight" from the coordinator's point of view. `is_complete`
    /// consults the result store: a record the store already holds is not
    /// in-flight even if the manifest's `done` line was lost to a crash.
    pub fn in_flight<'a>(&'a self, is_complete: &dyn Fn(&str) -> bool) -> Vec<&'a ManifestRecord> {
        self.records_in_order()
            .filter(|r| r.status == MANIFEST_ASSIGNED && !is_complete(&r.fp))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_manifest(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("surepath-runner-manifest-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.manifest.jsonl", std::process::id()))
    }

    #[test]
    fn manifest_path_derives_from_the_store_path() {
        assert_eq!(
            manifest_path(Path::new("results/grid.jsonl")),
            PathBuf::from("results/grid.manifest.jsonl")
        );
    }

    #[test]
    fn append_then_reopen_keeps_latest_status() {
        let path = temp_manifest("reopen");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = ShardManifest::open(&path).unwrap();
            m.record_assigned("aaaa", 0, "w1").unwrap();
            m.record_assigned("bbbb", 1, "w2").unwrap();
            m.record_done("aaaa", 0, "w1").unwrap();
            // A re-offer after lease expiry: the new worker's assignment wins.
            m.record_assigned("bbbb", 1, "w3").unwrap();
        }
        let m = ShardManifest::open(&path).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.record("aaaa").unwrap().status, MANIFEST_DONE);
        assert_eq!(m.record("bbbb").unwrap().worker, "w3");
        // `done` is terminal: a stale assignment replayed later cannot
        // resurrect an in-flight state.
        let mut m = ShardManifest::open(&path).unwrap();
        m.record_assigned("aaaa", 0, "w9").unwrap();
        assert_eq!(m.record("aaaa").unwrap().status, MANIFEST_DONE);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reclaimed_supersedes_assigned_but_never_done() {
        let path = temp_manifest("reclaimed");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = ShardManifest::open(&path).unwrap();
            m.record_assigned("aaaa", 0, "w1").unwrap();
            m.record_assigned("bbbb", 0, "w1").unwrap();
            m.record_done("bbbb", 0, "w1").unwrap();
            // The worker's connection died: `aaaa` is reclaimed, `bbbb` was
            // already delivered and must stay done.
            m.record_reclaimed("aaaa", 0, "w1").unwrap();
            m.record_reclaimed("bbbb", 0, "w1").unwrap();
        }
        let m = ShardManifest::open(&path).unwrap();
        assert_eq!(m.record("aaaa").unwrap().status, MANIFEST_RECLAIMED);
        assert_eq!(m.record("bbbb").unwrap().status, MANIFEST_DONE);
        // A reclaimed job is not in flight (it sits in a queue, unassigned).
        let nothing_complete = |_: &str| false;
        assert!(m.in_flight(&nothing_complete).is_empty());
        // A re-offer puts it back in flight under the new worker.
        let mut m = ShardManifest::open(&path).unwrap();
        m.record_assigned("aaaa", 0, "w2").unwrap();
        let in_flight = m.in_flight(&nothing_complete);
        assert_eq!(in_flight.len(), 1);
        assert_eq!(in_flight[0].worker, "w2");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn in_flight_consults_the_store_for_lost_done_lines() {
        let path = temp_manifest("in-flight");
        let _ = std::fs::remove_file(&path);
        let mut m = ShardManifest::open(&path).unwrap();
        m.record_assigned("aaaa", 0, "w1").unwrap();
        m.record_assigned("bbbb", 0, "w1").unwrap();
        m.record_assigned("cccc", 1, "w2").unwrap();
        m.record_done("bbbb", 0, "w1").unwrap();
        // The store knows `cccc` completed even though no `done` line landed
        // (coordinator crashed between the two writes).
        let complete = |fp: &str| fp == "cccc";
        let in_flight = m.in_flight(&complete);
        assert_eq!(in_flight.len(), 1);
        assert_eq!(in_flight[0].fp, "aaaa");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_trailing_line_is_tolerated() {
        let path = temp_manifest("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = ShardManifest::open(&path).unwrap();
            m.record_assigned("aaaa", 0, "w1").unwrap();
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"fp\":\"bbbb\",\"sh").unwrap();
        }
        let m = ShardManifest::open(&path).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.corrupt_lines, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_only_open_rejects_writes_and_missing_files() {
        let path = temp_manifest("read-only");
        let _ = std::fs::remove_file(&path);
        {
            let mut m = ShardManifest::open(&path).unwrap();
            m.record_assigned("aaaa", 0, "w1").unwrap();
        }
        let mut ro = ShardManifest::open_read_only(&path).unwrap();
        assert_eq!(ro.len(), 1);
        assert!(ro.record_assigned("bbbb", 0, "w1").is_err());
        let missing = temp_manifest("read-only-missing");
        let _ = std::fs::remove_file(&missing);
        assert!(ShardManifest::open_read_only(&missing).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
