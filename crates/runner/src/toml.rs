//! A minimal TOML parser producing `serde::Value` trees.
//!
//! The build environment has no crates.io access, so the subset of TOML that
//! campaign specs need is implemented here:
//!
//! * `key = value` pairs with bare keys;
//! * basic strings (`"…"` with the standard escapes), integers, floats,
//!   booleans;
//! * arrays (`[1, 2, 3]`, multi-line allowed, trailing comma allowed);
//! * inline tables (`{ sides = [8, 8], concentration = 8 }`);
//! * table headers (`[section]`, dotted `[a.b]`) and arrays of tables
//!   (`[[topologies]]`);
//! * `#` comments and blank lines.
//!
//! Not supported (clear error instead): literal/multi-line strings, dates,
//! dotted keys in assignments.

use serde::{Number, Value};

/// Parses a TOML document into an object [`Value`].
pub fn parse(input: &str) -> Result<Value, String> {
    let mut parser = Parser {
        chars: input.chars().collect(),
        pos: 0,
    };
    let mut root = Vec::new();
    // Path of the table currently being filled; empty = root.
    let mut current_path: Vec<String> = Vec::new();
    loop {
        parser.skip_trivia();
        if parser.at_end() {
            break;
        }
        if parser.peek() == Some('[') {
            if parser.peek_at(1) == Some('[') {
                // [[array.of.tables]]
                parser.pos += 2;
                let path = parser.header_path()?;
                parser.expect(']')?;
                parser.expect(']')?;
                parser.end_of_line()?;
                push_array_table(&mut root, &path)?;
                current_path = path;
            } else {
                parser.pos += 1;
                let path = parser.header_path()?;
                parser.expect(']')?;
                parser.end_of_line()?;
                ensure_table(&mut root, &path)?;
                current_path = path;
            }
        } else {
            let key = parser.bare_key()?;
            parser.skip_spaces();
            parser.expect('=')?;
            parser.skip_spaces();
            let value = parser.value()?;
            parser.end_of_line()?;
            insert_value(&mut root, &current_path, key, value)?;
        }
    }
    Ok(Value::Object(root))
}

type Object = Vec<(String, Value)>;

/// Walks to the object at `path`, creating intermediate tables. For a path
/// ending in an array-of-tables, targets its **last** element.
fn navigate<'a>(root: &'a mut Object, path: &[String]) -> Result<&'a mut Object, String> {
    let mut current = root;
    for segment in path {
        let idx = match current.iter().position(|(k, _)| k == segment) {
            Some(i) => i,
            None => {
                current.push((segment.clone(), Value::Object(Vec::new())));
                current.len() - 1
            }
        };
        let slot = &mut current[idx].1;
        current = match slot {
            Value::Object(entries) => entries,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Object(entries)) => entries,
                _ => return Err(format!("`{segment}` is not a table")),
            },
            _ => return Err(format!("`{segment}` is not a table")),
        };
    }
    Ok(current)
}

fn ensure_table(root: &mut Object, path: &[String]) -> Result<(), String> {
    navigate(root, path).map(|_| ())
}

fn push_array_table(root: &mut Object, path: &[String]) -> Result<(), String> {
    let (last, parents) = path.split_last().expect("header path is non-empty");
    let parent = navigate(root, parents)?;
    match parent.iter_mut().find(|(k, _)| k == last) {
        Some((_, Value::Array(items))) => {
            items.push(Value::Object(Vec::new()));
        }
        Some((_, _)) => return Err(format!("`{last}` is already a non-array value")),
        None => {
            parent.push((last.clone(), Value::Array(vec![Value::Object(Vec::new())])));
        }
    }
    Ok(())
}

fn insert_value(
    root: &mut Object,
    table_path: &[String],
    key: String,
    value: Value,
) -> Result<(), String> {
    let table = navigate(root, table_path)?;
    if table.iter().any(|(k, _)| *k == key) {
        return Err(format!("duplicate key `{key}`"));
    }
    table.push((key, value));
    Ok(())
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn error(&self, message: &str) -> String {
        let line = self.chars[..self.pos.min(self.chars.len())]
            .iter()
            .filter(|&&c| c == '\n')
            .count()
            + 1;
        format!("{message} (line {line})")
    }

    /// Skips spaces, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(' ' | '\t' | '\r' | '\n') => self.pos += 1,
                Some('#') => {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// Skips spaces and tabs only.
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{c}`")))
        }
    }

    /// Requires a comment/newline/EOF after a completed construct.
    fn end_of_line(&mut self) -> Result<(), String> {
        self.skip_spaces();
        match self.peek() {
            None | Some('\n') => Ok(()),
            Some('\r') if self.peek_at(1) == Some('\n') => Ok(()),
            Some('#') => {
                while !matches!(self.peek(), None | Some('\n')) {
                    self.pos += 1;
                }
                Ok(())
            }
            Some(other) => Err(self.error(&format!("unexpected `{other}` after value"))),
        }
    }

    fn bare_key(&mut self) -> Result<String, String> {
        if self.peek() == Some('"') {
            return self.basic_string();
        }
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a key"));
        }
        Ok(self.chars[start..self.pos].iter().collect())
    }

    fn header_path(&mut self) -> Result<Vec<String>, String> {
        let mut path = Vec::new();
        loop {
            self.skip_spaces();
            path.push(self.bare_key()?);
            self.skip_spaces();
            if self.peek() == Some('.') {
                self.pos += 1;
            } else {
                return Ok(path);
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some('"') => self.basic_string().map(Value::String),
            Some('[') => self.array(),
            Some('{') => self.inline_table(),
            Some('t') | Some('f') => self.boolean(),
            Some(c) if c == '-' || c == '+' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a TOML value")),
        }
    }

    fn boolean(&mut self) -> Result<Value, String> {
        for (word, value) in [("true", true), ("false", false)] {
            if self.chars[self.pos..]
                .iter()
                .take(word.len())
                .collect::<String>()
                == word
            {
                self.pos += word.len();
                return Ok(Value::Bool(value));
            }
        }
        Err(self.error("invalid boolean"))
    }

    fn basic_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some('\n') => return Err(self.error("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    let escaped = match self.peek() {
                        Some('"') => '"',
                        Some('\\') => '\\',
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some('r') => '\r',
                        Some('u') | Some('U') => {
                            let digits = if self.peek() == Some('u') { 4 } else { 8 };
                            self.pos += 1;
                            if self.pos + digits > self.chars.len() {
                                return Err(self.error("truncated unicode escape"));
                            }
                            let hex: String =
                                self.chars[self.pos..self.pos + digits].iter().collect();
                            self.pos += digits - 1; // final +1 below
                            let cp = u32::from_str_radix(&hex, 16)
                                .map_err(|_| self.error("invalid unicode escape"))?;
                            char::from_u32(cp).ok_or_else(|| self.error("invalid code point"))?
                        }
                        _ => return Err(self.error("invalid escape")),
                    };
                    out.push(escaped);
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if matches!(self.peek(), Some('+' | '-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' | '_' => self.pos += 1,
                '.' | 'e' | 'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some('+' | '-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos]
            .iter()
            .filter(|&&c| c != '_')
            .collect();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.error(&format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        loop {
            self.skip_trivia();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            items.push(self.value()?);
            self.skip_trivia();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn inline_table(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut entries: Object = Vec::new();
        loop {
            self.skip_spaces();
            if self.peek() == Some('}') {
                self.pos += 1;
                return Ok(Value::Object(entries));
            }
            let key = self.bare_key()?;
            self.skip_spaces();
            self.expect('=')?;
            self.skip_spaces();
            let value = self.value()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.error(&format!("duplicate key `{key}` in inline table")));
            }
            entries.push((key, value));
            self.skip_spaces();
            match self.peek() {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in inline table")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_tables() {
        let doc = r#"
            # a campaign
            name = "quick"
            loads = [0.1, 0.2, 0.3]
            seeds = [1, 2]  # trailing comment
            enabled = true
            offset = -4

            [sim]
            warmup = 1_000
            measure = 2000

            [[topologies]]
            sides = [8, 8]
            concentration = 8

            [[topologies]]
            sides = [4, 4, 4]
        "#;
        let v = parse(doc).unwrap();
        assert_eq!(v["name"].as_str(), Some("quick"));
        assert_eq!(v["loads"].as_array().unwrap().len(), 3);
        assert_eq!(v["loads"][1].as_f64(), Some(0.2));
        assert_eq!(v["seeds"][0].as_u64(), Some(1));
        assert_eq!(v["enabled"].as_bool(), Some(true));
        assert_eq!(v["offset"].as_i64(), Some(-4));
        assert_eq!(v["sim"]["warmup"].as_u64(), Some(1000));
        let topologies = v["topologies"].as_array().unwrap();
        assert_eq!(topologies.len(), 2);
        assert_eq!(topologies[0]["concentration"].as_u64(), Some(8));
        assert_eq!(topologies[1]["sides"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn parses_inline_tables_and_multiline_arrays() {
        let doc = r#"
            topologies = [
                { sides = [8, 8], concentration = 8 },
                { sides = [4, 4, 4] },
            ]
            note = "escaped \"quote\" and \n newline"
        "#;
        let v = parse(doc).unwrap();
        let topologies = v["topologies"].as_array().unwrap();
        assert_eq!(topologies.len(), 2);
        assert_eq!(topologies[0]["sides"][1].as_u64(), Some(8));
        assert!(v["note"].as_str().unwrap().contains("\"quote\""));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("key").is_err());
        assert!(parse("key = ").is_err());
        assert!(parse("key = \"unterminated").is_err());
        assert!(parse("a = 1\na = 2").is_err());
        assert!(parse("[t\nkey = 1").is_err());
        assert!(parse("x = 1 y = 2").is_err());
    }

    #[test]
    fn dotted_headers_nest() {
        let v = parse("[a.b]\nc = 3\n").unwrap();
        assert_eq!(v["a"]["b"]["c"].as_u64(), Some(3));
    }
}
