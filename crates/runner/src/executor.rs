//! A fixed-size work-stealing thread pool for independent jobs.
//!
//! The previous generation of this codebase spawned **one OS thread per
//! simulation** (`std::thread::scope` fan-outs in `surepath-core`), which
//! falls over on large campaigns: a 2,000-job grid would try to run 2,000
//! concurrent cycle-level simulations. This executor instead runs a bounded
//! worker pool:
//!
//! * jobs are distributed round-robin into **per-worker deques**;
//! * each worker pops from the *front* of its own deque and, when empty,
//!   **steals from the back** of a sibling's deque, so uneven job costs
//!   (e.g. high-load saturation points next to cheap low-load points)
//!   still keep every core busy;
//! * every job runs under `catch_unwind`, so one panicking simulation is
//!   reported as a failed job instead of killing the whole campaign;
//! * results are delivered to a single consumer callback as they finish,
//!   which is what lets the store stream records to disk mid-campaign.
//!
//! Determinism note: job *results* must depend only on the job (the
//! simulator is seeded per job), never on scheduling. The executor makes no
//! ordering promises between `on_complete` calls; callers that need a
//! canonical order (the JSONL store does) re-order afterwards.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// What happened to one job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job panicked; the payload message is preserved.
    Panicked(String),
}

impl<T> JobOutcome<T> {
    /// Unwraps a completed outcome, re-panicking with the original message
    /// for panicked jobs (used by callers that want fail-fast semantics).
    pub fn unwrap_completed(self) -> T {
        match self {
            JobOutcome::Completed(v) => v,
            JobOutcome::Panicked(msg) => panic!("job panicked: {msg}"),
        }
    }
}

/// The default worker count: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `worker` over every item on a work-stealing pool of `threads`
/// workers, invoking `on_complete(index, outcome)` on the calling thread as
/// jobs finish (in completion order, not index order).
///
/// `on_complete` returns whether to keep going: returning `false` shuts the
/// pool down promptly — workers finish their in-flight job and stop pulling
/// new ones. Callers that cannot make use of further results (e.g. the
/// store's disk is full) use this to avoid burning hours of simulation that
/// could never be persisted.
pub fn run_work_stealing<I, T, F, C>(items: &[I], threads: usize, worker: F, mut on_complete: C)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
    C: FnMut(usize, JobOutcome<T>) -> bool,
{
    if items.is_empty() {
        return;
    }
    let threads = threads.clamp(1, items.len());

    // Round-robin initial distribution across per-worker deques.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            Mutex::new(
                (0..items.len())
                    .filter(|i| i % threads == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();

    let pop_next = |own: usize| -> Option<usize> {
        // Own deque first (front: cache-friendly FIFO of the initial share)…
        if let Some(idx) = queues[own].lock().expect("queue lock").pop_front() {
            return Some(idx);
        }
        // …then steal from the back of a sibling's deque, preferring the most
        // loaded one. Every queue is attempted: a single measured victim can
        // be drained by other thieves between the measurement and the steal,
        // and bailing out then would retire this worker while work remains.
        // (No job ever re-enters a queue, so observing every queue empty is a
        // safe termination condition.)
        let mut victims: Vec<usize> = (0..queues.len()).filter(|&w| w != own).collect();
        victims.sort_by_key(|&w| std::cmp::Reverse(queues[w].lock().expect("queue lock").len()));
        victims
            .into_iter()
            .find_map(|w| queues[w].lock().expect("queue lock").pop_back())
    };

    std::thread::scope(|scope| {
        let (sender, receiver) = mpsc::channel::<(usize, JobOutcome<T>)>();
        for w in 0..threads {
            let sender = sender.clone();
            let worker = &worker;
            let items_ref = items;
            let pop_next = &pop_next;
            scope.spawn(move || {
                while let Some(idx) = pop_next(w) {
                    let outcome =
                        match catch_unwind(AssertUnwindSafe(|| worker(idx, &items_ref[idx]))) {
                            Ok(value) => JobOutcome::Completed(value),
                            Err(payload) => JobOutcome::Panicked(panic_message(payload)),
                        };
                    if sender.send((idx, outcome)).is_err() {
                        // Consumer hung up; nothing useful left to do.
                        break;
                    }
                }
            });
        }
        drop(sender);
        for (idx, outcome) in receiver {
            if !on_complete(idx, outcome) {
                // Dropping the receiver makes every worker's next send fail,
                // so the pool drains promptly without starting new jobs.
                break;
            }
        }
    });
}

/// Convenience wrapper: maps `f` over `items` on the pool and returns
/// results **in input order**. Panics (with the original message) if any job
/// panicked — the fail-fast behaviour `surepath-core`'s sweep helpers want.
pub fn parallel_map<I, T, F>(items: &[I], threads: Option<usize>, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = threads.unwrap_or_else(default_threads);
    let mut slots: Vec<Option<JobOutcome<T>>> = (0..items.len()).map(|_| None).collect();
    run_work_stealing(
        items,
        threads,
        |_, item| f(item),
        |idx, outcome| {
            slots[idx] = Some(outcome);
            true
        },
    );
    slots
        .into_iter()
        .map(|slot| {
            slot.expect("executor completed every job")
                .unwrap_completed()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_exactly_once() {
        let items: Vec<usize> = (0..97).collect();
        let executed = AtomicUsize::new(0);
        let mut seen = vec![false; items.len()];
        run_work_stealing(
            &items,
            4,
            |_, &v| {
                executed.fetch_add(1, Ordering::Relaxed);
                v * 2
            },
            |idx, outcome| {
                assert!(!seen[idx], "job {idx} completed twice");
                seen[idx] = true;
                assert_eq!(outcome, JobOutcome::Completed(items[idx] * 2));
                true
            },
        );
        assert_eq!(executed.load(Ordering::Relaxed), items.len());
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..50).collect();
        let doubled = parallel_map(&items, Some(8), |&v| v * 2);
        assert_eq!(doubled, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn uses_a_bounded_pool_not_thread_per_job() {
        use std::sync::atomic::AtomicIsize;
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        parallel_map(&items, Some(3), |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak concurrency {} exceeded pool size",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn work_stealing_drains_uneven_queues() {
        // Worker 0's initial share is expensive; the others must steal it.
        let items: Vec<usize> = (0..32).collect();
        let slow_worker_jobs = AtomicUsize::new(0);
        let mut completed = 0;
        run_work_stealing(
            &items,
            4,
            |_, &v| {
                if v % 4 == 0 {
                    slow_worker_jobs.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                v
            },
            |_, _| {
                completed += 1;
                true
            },
        );
        assert_eq!(completed, 32);
        assert_eq!(slow_worker_jobs.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let items: Vec<usize> = (0..20).collect();
        let mut ok = 0;
        let mut panicked = 0;
        run_work_stealing(
            &items,
            4,
            |_, &v| {
                if v == 7 {
                    panic!("job {v} exploded");
                }
                v
            },
            |_, outcome| {
                match outcome {
                    JobOutcome::Completed(_) => ok += 1,
                    JobOutcome::Panicked(msg) => {
                        assert!(msg.contains("exploded"), "message preserved: {msg}");
                        panicked += 1;
                    }
                }
                true
            },
        );
        assert_eq!(ok, 19);
        assert_eq!(panicked, 1);
    }

    #[test]
    #[should_panic(expected = "job panicked")]
    fn parallel_map_propagates_panics() {
        let items = [1usize, 2, 3];
        let _ = parallel_map(&items, Some(2), |&v| {
            if v == 2 {
                panic!("boom");
            }
            v
        });
    }

    #[test]
    fn returning_false_from_on_complete_stops_the_pool_promptly() {
        let items: Vec<usize> = (0..200).collect();
        let executed = AtomicUsize::new(0);
        let mut delivered = 0;
        run_work_stealing(
            &items,
            2,
            |_, &v| {
                executed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(1));
                v
            },
            |_, _| {
                delivered += 1;
                delivered < 5 // cancel after the fifth result
            },
        );
        assert_eq!(delivered, 5);
        // Workers stop pulling new jobs once the consumer hangs up; at most
        // the in-flight jobs (one per worker) plus a small channel backlog
        // run beyond the cancellation point.
        let total = executed.load(Ordering::Relaxed);
        assert!(
            total < 200,
            "cancellation must not run the whole grid (ran {total})"
        );
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let items: Vec<usize> = Vec::new();
        let mut calls = 0;
        run_work_stealing(
            &items,
            4,
            |_, &v| v,
            |_, _| {
                calls += 1;
                true
            },
        );
        assert_eq!(calls, 0);
    }
}
