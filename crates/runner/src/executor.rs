//! A fixed-size work-stealing thread pool for independent jobs.
//!
//! The previous generation of this codebase spawned **one OS thread per
//! simulation** (`std::thread::scope` fan-outs in `surepath-core`), which
//! falls over on large campaigns: a 2,000-job grid would try to run 2,000
//! concurrent cycle-level simulations. This executor instead runs a bounded
//! worker pool:
//!
//! * jobs are distributed round-robin into **per-worker deques**;
//! * each worker pops from the *front* of its own deque and, when empty,
//!   **steals from the back** of a sibling's deque, so uneven job costs
//!   (e.g. high-load saturation points next to cheap low-load points)
//!   still keep every core busy;
//! * every job runs under `catch_unwind`, so one panicking simulation is
//!   reported as a failed job instead of killing the whole campaign;
//! * results are delivered to a single consumer callback as they finish,
//!   which is what lets the store stream records to disk mid-campaign.
//!
//! Determinism note: job *results* must depend only on the job (the
//! simulator is seeded per job), never on scheduling. The executor makes no
//! ordering promises between `on_complete` calls; callers that need a
//! canonical order (the JSONL store does) re-order afterwards.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// What happened to one job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Completed(T),
    /// The job panicked; the payload message is preserved.
    Panicked(String),
}

impl<T> JobOutcome<T> {
    /// Unwraps a completed outcome, re-panicking with the original message
    /// for panicked jobs (used by callers that want fail-fast semantics).
    pub fn unwrap_completed(self) -> T {
        match self {
            JobOutcome::Completed(v) => v,
            JobOutcome::Panicked(msg) => panic!("job panicked: {msg}"),
        }
    }
}

/// The default worker count: all available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Adaptive chunk sizing for very cheap jobs.
///
/// A campaign of tiny jobs (fig01-style quick cells that simulate for a few
/// milliseconds) pays a queue lock, a steal scan and a channel send **per
/// job** — dispatch overhead comparable to the work itself. With chunking a
/// worker grabs several jobs per queue visit, sized so a chunk is worth
/// roughly [`ChunkOptions::target_millis`] of work according to a moving
/// estimate of per-job wall-clock. Expensive jobs (estimate ≥ target) keep
/// chunk = 1, preserving stealability; cheap jobs amortise dispatch.
///
/// The estimate starts from [`ChunkOptions::initial_estimate_millis`]
/// (callers seed it from the `<store>.timings.jsonl` sidecar of a previous
/// run) and is updated as an exponentially weighted moving average as jobs
/// finish. Results still flow to `on_complete` one by one, so store bytes
/// are unaffected — chunking only changes how workers pull work.
#[derive(Clone, Debug)]
pub struct ChunkOptions {
    /// Target wall-clock per chunk in milliseconds.
    pub target_millis: u64,
    /// Hard cap on jobs per chunk (keeps stealing effective and bounds the
    /// work lost when a run is cancelled mid-chunk).
    pub max_chunk: usize,
    /// Seed for the per-job wall-clock estimate; `None` starts at chunk = 1
    /// until the first measurements arrive.
    pub initial_estimate_millis: Option<f64>,
}

impl Default for ChunkOptions {
    fn default() -> Self {
        ChunkOptions {
            target_millis: 25,
            max_chunk: 32,
            initial_estimate_millis: None,
        }
    }
}

/// EWMA weight of each new per-job sample.
const ESTIMATE_ALPHA: f64 = 0.2;

/// The moving per-job wall-clock estimate, shared across workers as f64
/// bits in an atomic. Zero means "no estimate yet". Updates race benignly —
/// the estimate is a scheduling heuristic, never a correctness input.
struct JobCostEstimate(AtomicU64);

impl JobCostEstimate {
    fn new(initial_millis: Option<f64>) -> Self {
        JobCostEstimate(AtomicU64::new(
            initial_millis
                .filter(|m| m.is_finite() && *m > 0.0)
                .map_or(0, f64::to_bits),
        ))
    }

    fn record(&self, millis: f64) {
        let old = f64::from_bits(self.0.load(Ordering::Relaxed));
        let new = if old > 0.0 {
            old * (1.0 - ESTIMATE_ALPHA) + millis * ESTIMATE_ALPHA
        } else {
            millis
        };
        self.0.store(new.to_bits(), Ordering::Relaxed);
    }

    /// Jobs per chunk under `opts`, given the current estimate.
    fn chunk_size(&self, opts: &ChunkOptions) -> usize {
        let estimate = f64::from_bits(self.0.load(Ordering::Relaxed));
        if estimate <= 0.0 {
            return 1;
        }
        ((opts.target_millis as f64 / estimate) as usize).clamp(1, opts.max_chunk)
    }
}

/// Runs `worker` over every item on a work-stealing pool of `threads`
/// workers, invoking `on_complete(index, outcome)` on the calling thread as
/// jobs finish (in completion order, not index order).
///
/// `on_complete` returns whether to keep going: returning `false` shuts the
/// pool down promptly — workers finish their in-flight job and stop pulling
/// new ones. Callers that cannot make use of further results (e.g. the
/// store's disk is full) use this to avoid burning hours of simulation that
/// could never be persisted.
pub fn run_work_stealing<I, T, F, C>(items: &[I], threads: usize, worker: F, on_complete: C)
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
    C: FnMut(usize, JobOutcome<T>) -> bool,
{
    // A chunk cap of 1 disables chunking (and its timing overhead is two
    // Instant reads per job — negligible against any real simulation).
    run_work_stealing_chunked(
        items,
        threads,
        &ChunkOptions {
            max_chunk: 1,
            ..ChunkOptions::default()
        },
        worker,
        on_complete,
    );
}

/// [`run_work_stealing`] with adaptive chunking: workers pull up to
/// [`JobCostEstimate::chunk_size`] jobs per queue visit (see
/// [`ChunkOptions`]). Results are still delivered per job; only dispatch
/// granularity changes, so anything derived from job results — the result
/// store included — is byte-identical to unchunked execution.
pub fn run_work_stealing_chunked<I, T, F, C>(
    items: &[I],
    threads: usize,
    chunking: &ChunkOptions,
    worker: F,
    mut on_complete: C,
) where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
    C: FnMut(usize, JobOutcome<T>) -> bool,
{
    if items.is_empty() {
        return;
    }
    let threads = threads.clamp(1, items.len());
    let estimate = JobCostEstimate::new(chunking.initial_estimate_millis);

    // Round-robin initial distribution across per-worker deques.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            Mutex::new(
                (0..items.len())
                    .filter(|i| i % threads == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();

    let pop_chunk = |own: usize, chunk: &mut Vec<usize>| {
        let want = estimate.chunk_size(chunking);
        // Own deque first (front: cache-friendly FIFO of the initial share)…
        {
            let mut queue = queues[own].lock().expect("queue lock");
            while chunk.len() < want {
                match queue.pop_front() {
                    Some(idx) => chunk.push(idx),
                    None => break,
                }
            }
        }
        if !chunk.is_empty() {
            return;
        }
        // …then steal from the back of a sibling's deque, preferring the most
        // loaded one. Every queue is attempted: a single measured victim can
        // be drained by other thieves between the measurement and the steal,
        // and bailing out then would retire this worker while work remains.
        // (No job ever re-enters a queue, so observing every queue empty is a
        // safe termination condition.)
        let mut victims: Vec<usize> = (0..queues.len()).filter(|&w| w != own).collect();
        victims.sort_by_key(|&w| std::cmp::Reverse(queues[w].lock().expect("queue lock").len()));
        for w in victims {
            let mut queue = queues[w].lock().expect("queue lock");
            while chunk.len() < want {
                match queue.pop_back() {
                    Some(idx) => chunk.push(idx),
                    None => break,
                }
            }
            if !chunk.is_empty() {
                return;
            }
        }
    };

    std::thread::scope(|scope| {
        let (sender, receiver) = mpsc::channel::<(usize, JobOutcome<T>)>();
        for w in 0..threads {
            let sender = sender.clone();
            let worker = &worker;
            let items_ref = items;
            let pop_chunk = &pop_chunk;
            let estimate = &estimate;
            scope.spawn(move || {
                let mut chunk: Vec<usize> = Vec::new();
                'outer: loop {
                    chunk.clear();
                    pop_chunk(w, &mut chunk);
                    if chunk.is_empty() {
                        break;
                    }
                    for &idx in &chunk {
                        let started = Instant::now();
                        let outcome =
                            match catch_unwind(AssertUnwindSafe(|| worker(idx, &items_ref[idx]))) {
                                Ok(value) => JobOutcome::Completed(value),
                                Err(payload) => JobOutcome::Panicked(panic_message(payload)),
                            };
                        estimate.record(started.elapsed().as_secs_f64() * 1_000.0);
                        if sender.send((idx, outcome)).is_err() {
                            // Consumer hung up; nothing useful left to do
                            // (the rest of the chunk is abandoned too).
                            break 'outer;
                        }
                    }
                }
            });
        }
        drop(sender);
        for (idx, outcome) in receiver {
            if !on_complete(idx, outcome) {
                // Dropping the receiver makes every worker's next send fail,
                // so the pool drains promptly without starting new jobs.
                break;
            }
        }
    });
}

/// Convenience wrapper: maps `f` over `items` on the pool and returns
/// results **in input order**. Panics (with the original message) if any job
/// panicked — the fail-fast behaviour `surepath-core`'s sweep helpers want.
pub fn parallel_map<I, T, F>(items: &[I], threads: Option<usize>, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = threads.unwrap_or_else(default_threads);
    let mut slots: Vec<Option<JobOutcome<T>>> = (0..items.len()).map(|_| None).collect();
    run_work_stealing(
        items,
        threads,
        |_, item| f(item),
        |idx, outcome| {
            slots[idx] = Some(outcome);
            true
        },
    );
    slots
        .into_iter()
        .map(|slot| {
            slot.expect("executor completed every job")
                .unwrap_completed()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_job_exactly_once() {
        let items: Vec<usize> = (0..97).collect();
        let executed = AtomicUsize::new(0);
        let mut seen = vec![false; items.len()];
        run_work_stealing(
            &items,
            4,
            |_, &v| {
                executed.fetch_add(1, Ordering::Relaxed);
                v * 2
            },
            |idx, outcome| {
                assert!(!seen[idx], "job {idx} completed twice");
                seen[idx] = true;
                assert_eq!(outcome, JobOutcome::Completed(items[idx] * 2));
                true
            },
        );
        assert_eq!(executed.load(Ordering::Relaxed), items.len());
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..50).collect();
        let doubled = parallel_map(&items, Some(8), |&v| v * 2);
        assert_eq!(doubled, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn uses_a_bounded_pool_not_thread_per_job() {
        use std::sync::atomic::AtomicIsize;
        let live = AtomicIsize::new(0);
        let peak = AtomicIsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        parallel_map(&items, Some(3), |_| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) <= 3,
            "peak concurrency {} exceeded pool size",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn work_stealing_drains_uneven_queues() {
        // Worker 0's initial share is expensive; the others must steal it.
        let items: Vec<usize> = (0..32).collect();
        let slow_worker_jobs = AtomicUsize::new(0);
        let mut completed = 0;
        run_work_stealing(
            &items,
            4,
            |_, &v| {
                if v % 4 == 0 {
                    slow_worker_jobs.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                v
            },
            |_, _| {
                completed += 1;
                true
            },
        );
        assert_eq!(completed, 32);
        assert_eq!(slow_worker_jobs.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let items: Vec<usize> = (0..20).collect();
        let mut ok = 0;
        let mut panicked = 0;
        run_work_stealing(
            &items,
            4,
            |_, &v| {
                if v == 7 {
                    panic!("job {v} exploded");
                }
                v
            },
            |_, outcome| {
                match outcome {
                    JobOutcome::Completed(_) => ok += 1,
                    JobOutcome::Panicked(msg) => {
                        assert!(msg.contains("exploded"), "message preserved: {msg}");
                        panicked += 1;
                    }
                }
                true
            },
        );
        assert_eq!(ok, 19);
        assert_eq!(panicked, 1);
    }

    #[test]
    #[should_panic(expected = "job panicked")]
    fn parallel_map_propagates_panics() {
        let items = [1usize, 2, 3];
        let _ = parallel_map(&items, Some(2), |&v| {
            if v == 2 {
                panic!("boom");
            }
            v
        });
    }

    #[test]
    fn returning_false_from_on_complete_stops_the_pool_promptly() {
        let items: Vec<usize> = (0..200).collect();
        let executed = AtomicUsize::new(0);
        let mut delivered = 0;
        run_work_stealing(
            &items,
            2,
            |_, &v| {
                executed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(1));
                v
            },
            |_, _| {
                delivered += 1;
                delivered < 5 // cancel after the fifth result
            },
        );
        assert_eq!(delivered, 5);
        // Workers stop pulling new jobs once the consumer hangs up; at most
        // the in-flight jobs (one per worker) plus a small channel backlog
        // run beyond the cancellation point.
        let total = executed.load(Ordering::Relaxed);
        assert!(
            total < 200,
            "cancellation must not run the whole grid (ran {total})"
        );
    }

    #[test]
    fn chunk_size_follows_the_cost_estimate() {
        let opts = ChunkOptions {
            target_millis: 20,
            max_chunk: 16,
            initial_estimate_millis: None,
        };
        let est = JobCostEstimate::new(None);
        assert_eq!(est.chunk_size(&opts), 1, "no estimate yet -> no chunking");
        let est = JobCostEstimate::new(Some(0.5));
        assert_eq!(est.chunk_size(&opts), 16, "40 jobs' worth caps at max");
        let est = JobCostEstimate::new(Some(5.0));
        assert_eq!(est.chunk_size(&opts), 4);
        let est = JobCostEstimate::new(Some(500.0));
        assert_eq!(est.chunk_size(&opts), 1, "expensive jobs stay stealable");
        // Bad seeds are ignored rather than poisoning the estimate.
        let est = JobCostEstimate::new(Some(f64::NAN));
        assert_eq!(est.chunk_size(&opts), 1);
        let est = JobCostEstimate::new(Some(-3.0));
        assert_eq!(est.chunk_size(&opts), 1);
    }

    #[test]
    fn estimate_moves_towards_new_samples() {
        let est = JobCostEstimate::new(None);
        est.record(10.0);
        let opts = ChunkOptions {
            target_millis: 20,
            max_chunk: 32,
            initial_estimate_millis: None,
        };
        assert_eq!(est.chunk_size(&opts), 2, "first sample is adopted as-is");
        for _ in 0..60 {
            est.record(1.0);
        }
        assert!(
            est.chunk_size(&opts) >= 16,
            "the EWMA converges to the cheap-job regime"
        );
    }

    #[test]
    fn chunked_execution_runs_every_job_exactly_once() {
        // A pre-seeded cheap estimate makes workers pull whole chunks; every
        // job must still run exactly once and deliver its own result.
        let items: Vec<usize> = (0..193).collect();
        let opts = ChunkOptions {
            target_millis: 50,
            max_chunk: 8,
            initial_estimate_millis: Some(0.01),
        };
        let executed = AtomicUsize::new(0);
        let mut seen = vec![false; items.len()];
        run_work_stealing_chunked(
            &items,
            4,
            &opts,
            |_, &v| {
                executed.fetch_add(1, Ordering::Relaxed);
                v * 3
            },
            |idx, outcome| {
                assert!(!seen[idx], "job {idx} completed twice");
                seen[idx] = true;
                assert_eq!(outcome, JobOutcome::Completed(items[idx] * 3));
                true
            },
        );
        assert_eq!(executed.load(Ordering::Relaxed), items.len());
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chunked_cancellation_abandons_the_rest_of_the_chunk() {
        let items: Vec<usize> = (0..400).collect();
        let opts = ChunkOptions {
            target_millis: 100,
            max_chunk: 16,
            initial_estimate_millis: Some(0.01),
        };
        let executed = AtomicUsize::new(0);
        let mut delivered = 0;
        run_work_stealing_chunked(
            &items,
            2,
            &opts,
            |_, &v| {
                executed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_micros(200));
                v
            },
            |_, _| {
                delivered += 1;
                delivered < 5
            },
        );
        assert_eq!(delivered, 5);
        assert!(
            executed.load(Ordering::Relaxed) < 400,
            "cancellation must not run the whole grid"
        );
    }

    #[test]
    fn empty_job_list_is_a_no_op() {
        let items: Vec<usize> = Vec::new();
        let mut calls = 0;
        run_work_stealing(
            &items,
            4,
            |_, &v| v,
            |_, _| {
                calls += 1;
                true
            },
        );
        assert_eq!(calls, 0);
    }
}
