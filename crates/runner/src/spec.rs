//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] names every dimension of an experiment grid —
//! topologies, mechanisms, traffic patterns, fault scenarios, offered loads
//! and seeds — and [`CampaignSpec::expand`] turns the cross-product into a
//! flat, deterministically ordered list of [`JobSpec`]s. Job semantics
//! (what a mechanism name means, how a scenario string is parsed) belong to
//! the caller; the runner only guarantees a stable grid and stable
//! fingerprints.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// One topology of a campaign: HyperX sides plus an optional concentration
/// (servers per switch; callers default it to the first side).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// HyperX sides, e.g. `[16, 16]` or `[8, 8, 8]`.
    pub sides: Vec<usize>,
    /// Servers per switch (`None` = caller's default).
    pub concentration: Option<usize>,
}

impl TopologySpec {
    /// A short label like `8x8x8`.
    pub fn label(&self) -> String {
        self.sides
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("x")
    }
}

/// A declarative experiment matrix.
///
/// Missing dimensions default to a single neutral entry, so analysis-style
/// campaigns (e.g. diameter-under-faults, which has no traffic or load) can
/// omit what they do not use.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name (used in job fingerprints and reports).
    pub name: String,
    /// Job kind understood by the executing bridge: `"rate"` (default) for
    /// open-loop simulation points, `"batch"` for closed-loop completion-time
    /// runs; other kinds (e.g. `"diameter"`) are defined by their callers.
    pub kind: Option<String>,
    /// The topologies of the grid (at least one).
    pub topologies: Vec<TopologySpec>,
    /// Routing mechanism names (e.g. `polsp`, `omnisp`).
    pub mechanisms: Option<Vec<String>>,
    /// Traffic pattern names (e.g. `uniform`, `dcr`).
    pub traffics: Option<Vec<String>>,
    /// Fault scenario strings (e.g. `none`, `random:30:5`, `cross:5`).
    pub scenarios: Option<Vec<String>>,
    /// Escape-root placement specs (e.g. `suggested`, `max-degree`); a
    /// dimension of the grid, `None` = the caller's default placement.
    pub roots: Option<Vec<String>>,
    /// Offered loads in phits/cycle/server.
    pub loads: Option<Vec<f64>>,
    /// Random seeds (default `[1]`). With `replicas` set, at most one seed
    /// is allowed: it becomes the base of the derived replica seeds.
    pub seeds: Option<Vec<u64>>,
    /// Replication factor: every grid point expands into this many jobs with
    /// derived consecutive seeds (`base`, `base + 1`, …, where `base` is the
    /// single `seeds` entry, default 1). Replication is an expansion-time
    /// concept only — the expanded [`JobSpec`]s are indistinguishable from an
    /// explicit seed grid, so fingerprints (and existing stores) stay valid.
    pub replicas: Option<usize>,
    /// Virtual channels per port (`None` = mechanism default). Mutually
    /// exclusive with `vc_counts`.
    pub vcs: Option<usize>,
    /// VC budgets swept as a grid dimension (ablation studies). Mutually
    /// exclusive with `vcs`.
    pub vc_counts: Option<Vec<usize>>,
    /// Warmup cycles override.
    pub warmup: Option<u64>,
    /// Measurement cycles override.
    pub measure: Option<u64>,
    /// Packets each server sends in a `"batch"` (closed-loop) campaign.
    pub packets_per_server: Option<u64>,
    /// Sampling window (cycles) of the batch throughput-over-time curve.
    pub sample_window: Option<u64>,
    /// RNG determinism contract of rate-mode generation: `"v1"` (per-server
    /// Bernoulli trials, the pre-versioning contract) or `"v2"` (the
    /// counting sampler). `None` means v1 — every store written before the
    /// contract was versioned ran v1, and `None` keeps those fingerprints
    /// (and byte-identical re-runs) valid. Not a grid dimension: one
    /// campaign runs under one contract.
    pub rng: Option<String>,
    /// Optional global wall-clock budget in seconds: once exceeded, the
    /// driver stops dequeuing, finalizes the partial store cleanly and
    /// reports the deadline hit (re-running resumes the rest). The
    /// `SUREPATH_DEADLINE_SECS` environment variable overrides this field.
    /// Not a grid dimension — it never enters [`JobSpec`]s or fingerprints.
    pub deadline_secs: Option<u64>,
    /// Intra-simulation partition count of the engine (`SimConfig::
    /// partitions`): how many contiguous switch ranges each simulation steps
    /// in parallel. Run tuning only — results are byte-identical for every
    /// value, so it never enters [`JobSpec`]s or fingerprints, and stores
    /// written at different partition counts compare equal byte for byte.
    pub partitions: Option<usize>,
}

impl Default for CampaignSpec {
    /// An empty (invalid) spec: a convenience base for struct updates in
    /// spec-building code; `validate` rejects it until a name and at least
    /// one topology are filled in.
    fn default() -> Self {
        CampaignSpec {
            name: String::new(),
            kind: None,
            topologies: Vec::new(),
            mechanisms: None,
            traffics: None,
            scenarios: None,
            roots: None,
            loads: None,
            seeds: None,
            replicas: None,
            vcs: None,
            vc_counts: None,
            warmup: None,
            measure: None,
            packets_per_server: None,
            sample_window: None,
            rng: None,
            deadline_secs: None,
            partitions: None,
        }
    }
}

/// One fully instantiated cell of the campaign grid. Serialized verbatim
/// into the result store; its canonical JSON is what gets fingerprinted.
/// `Serialize` is manual (below): it mirrors the derive field for field,
/// except `rng: None` is omitted entirely — the field did not exist when
/// pre-contract stores were written, and re-finalizing such a store under
/// a newer binary must not change its bytes.
#[derive(Clone, Debug, PartialEq, Deserialize)]
pub struct JobSpec {
    /// Owning campaign name.
    pub campaign: String,
    /// Job kind (see [`CampaignSpec::kind`]).
    pub kind: String,
    /// HyperX sides.
    pub sides: Vec<usize>,
    /// Servers per switch.
    pub concentration: Option<usize>,
    /// Routing mechanism name.
    pub mechanism: Option<String>,
    /// Traffic pattern name.
    pub traffic: Option<String>,
    /// Fault scenario string.
    pub scenario: Option<String>,
    /// Escape-root placement spec.
    pub root: Option<String>,
    /// Offered load.
    pub load: Option<f64>,
    /// Random seed.
    pub seed: u64,
    /// VC override.
    pub vcs: Option<usize>,
    /// Warmup cycles override.
    pub warmup: Option<u64>,
    /// Measurement cycles override.
    pub measure: Option<u64>,
    /// Packets per server (batch jobs).
    pub packets_per_server: Option<u64>,
    /// Throughput sampling window in cycles (batch jobs).
    pub sample_window: Option<u64>,
    /// RNG determinism contract (`"v1"` / `"v2"`; `None` = v1, the contract
    /// every pre-versioning store ran under). `None` is dropped from the
    /// canonical JSON, so legacy fingerprints are untouched; `"v2"` jobs
    /// fingerprint differently — deliberately, because their byte streams
    /// are from a different distribution draw order.
    pub rng: Option<String>,
}

impl Default for JobSpec {
    /// A neutral `"rate"` job with nothing filled in — a convenience base
    /// for tests and spec-building code.
    fn default() -> Self {
        JobSpec {
            campaign: String::new(),
            kind: "rate".to_string(),
            sides: Vec::new(),
            concentration: None,
            mechanism: None,
            traffic: None,
            scenario: None,
            root: None,
            load: None,
            seed: 1,
            vcs: None,
            warmup: None,
            measure: None,
            packets_per_server: None,
            sample_window: None,
            rng: None,
        }
    }
}

impl Serialize for JobSpec {
    /// Mirrors the derived impl — declaration order, one entry per field —
    /// except `rng` is **omitted** (not `null`) when unset. Store records
    /// embed this JSON verbatim, so an always-present `"rng":null` would
    /// change the bytes of every record a legacy store rewrites on
    /// finalize; omission keeps pre-contract stores byte-stable while
    /// `"rng":"v2"` still serializes (and fingerprints) when set.
    fn serialize(&self) -> serde::Value {
        let mut fields: Vec<(String, serde::Value)> = vec![
            ("campaign".into(), Serialize::serialize(&self.campaign)),
            ("kind".into(), Serialize::serialize(&self.kind)),
            ("sides".into(), Serialize::serialize(&self.sides)),
            (
                "concentration".into(),
                Serialize::serialize(&self.concentration),
            ),
            ("mechanism".into(), Serialize::serialize(&self.mechanism)),
            ("traffic".into(), Serialize::serialize(&self.traffic)),
            ("scenario".into(), Serialize::serialize(&self.scenario)),
            ("root".into(), Serialize::serialize(&self.root)),
            ("load".into(), Serialize::serialize(&self.load)),
            ("seed".into(), Serialize::serialize(&self.seed)),
            ("vcs".into(), Serialize::serialize(&self.vcs)),
            ("warmup".into(), Serialize::serialize(&self.warmup)),
            ("measure".into(), Serialize::serialize(&self.measure)),
            (
                "packets_per_server".into(),
                Serialize::serialize(&self.packets_per_server),
            ),
            (
                "sample_window".into(),
                Serialize::serialize(&self.sample_window),
            ),
        ];
        if self.rng.is_some() {
            fields.push(("rng".into(), Serialize::serialize(&self.rng)));
        }
        serde::Value::Object(fields)
    }
}

impl JobSpec {
    /// A one-line human label for progress output.
    pub fn label(&self) -> String {
        let mut parts = vec![self
            .sides
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("x")];
        if let Some(m) = &self.mechanism {
            parts.push(m.clone());
        }
        if let Some(t) = &self.traffic {
            parts.push(t.clone());
        }
        if let Some(s) = &self.scenario {
            parts.push(s.clone());
        }
        if let Some(r) = &self.root {
            parts.push(format!("root={r}"));
        }
        if let Some(v) = self.vcs {
            parts.push(format!("vcs={v}"));
        }
        if let Some(l) = self.load {
            parts.push(format!("load={l}"));
        }
        if let Some(p) = self.packets_per_server {
            parts.push(format!("packets={p}"));
        }
        if let Some(r) = &self.rng {
            parts.push(format!("rng={r}"));
        }
        parts.push(format!("seed={}", self.seed));
        parts.join(" / ")
    }
}

impl CampaignSpec {
    /// The job kind, defaulting to `"rate"`.
    pub fn kind(&self) -> &str {
        self.kind.as_deref().unwrap_or("rate")
    }

    /// Checks the spec is a well-formed grid.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("campaign name must not be empty".to_string());
        }
        if self.topologies.is_empty() {
            return Err("campaign needs at least one topology".to_string());
        }
        for t in &self.topologies {
            if t.sides.is_empty() || t.sides.iter().any(|&s| s < 2) {
                return Err(format!(
                    "topology {:?}: sides must be non-empty and >= 2",
                    t.sides
                ));
            }
        }
        for (dim, empty) in [
            (
                "mechanisms",
                self.mechanisms.as_ref().is_some_and(Vec::is_empty),
            ),
            (
                "traffics",
                self.traffics.as_ref().is_some_and(Vec::is_empty),
            ),
            (
                "scenarios",
                self.scenarios.as_ref().is_some_and(Vec::is_empty),
            ),
            ("roots", self.roots.as_ref().is_some_and(Vec::is_empty)),
        ] {
            if empty {
                return Err(format!("campaign dimension `{dim}` is present but empty"));
            }
        }
        if self.loads.as_ref().is_some_and(Vec::is_empty) {
            return Err("campaign dimension `loads` is present but empty".to_string());
        }
        if let Some(loads) = &self.loads {
            if loads.iter().any(|&l| !(0.0..=1.0).contains(&l) || l == 0.0) {
                return Err("offered loads must lie in (0, 1]".to_string());
            }
        }
        if self.seeds.as_ref().is_some_and(Vec::is_empty) {
            return Err("campaign dimension `seeds` is present but empty".to_string());
        }
        if let Some(seeds) = &self.seeds {
            let mut seen = std::collections::HashSet::new();
            for &seed in seeds {
                if !seen.insert(seed) {
                    return Err(format!(
                        "campaign `{}`: duplicate seed {seed} in `seeds` (every grid row \
                         would collide on its fingerprint)",
                        self.name
                    ));
                }
            }
        }
        if let Some(replicas) = self.replicas {
            if replicas == 0 {
                return Err(format!(
                    "campaign `{}`: `replicas` must be at least 1",
                    self.name
                ));
            }
            if self.seeds.as_ref().is_some_and(|s| s.len() > 1) {
                return Err(format!(
                    "campaign `{}`: `replicas` cannot be combined with a multi-seed `seeds` \
                     grid (ambiguous replication; give a single base seed or drop `seeds`)",
                    self.name
                ));
            }
        }
        if self.vc_counts.as_ref().is_some_and(Vec::is_empty) {
            return Err("campaign dimension `vc_counts` is present but empty".to_string());
        }
        if self.vcs.is_some() && self.vc_counts.is_some() {
            return Err("`vcs` and `vc_counts` are mutually exclusive".to_string());
        }
        if self.packets_per_server == Some(0) {
            return Err("`packets_per_server` must be at least 1".to_string());
        }
        if self.sample_window == Some(0) {
            return Err("`sample_window` must be at least 1".to_string());
        }
        if self.deadline_secs == Some(0) {
            return Err("`deadline_secs` must be at least 1".to_string());
        }
        if self.partitions == Some(0) {
            return Err("`partitions` must be at least 1".to_string());
        }
        if let Some(rng) = &self.rng {
            if rng != "v1" && rng != "v2" {
                return Err(format!(
                    "campaign `{}`: unknown RNG contract `{rng}` (expected `v1` or `v2`)",
                    self.name
                ));
            }
        }
        Ok(())
    }

    /// The effective seed list of the grid: the derived consecutive replica
    /// seeds when `replicas` is set, the explicit `seeds` grid (default
    /// `[1]`) otherwise. The base replica seed is the single `seeds` entry,
    /// so a store written with `seeds = [1]` stays fingerprint-valid for the
    /// first replica after switching the spec to `replicas = N`.
    pub fn replica_seeds(&self) -> Vec<u64> {
        match self.replicas {
            Some(n) => {
                let base = self.seeds.as_ref().map_or(1, |s| s[0]);
                (0..n as u64).map(|i| base.wrapping_add(i)).collect()
            }
            None => self.seeds.clone().unwrap_or_else(|| vec![1]),
        }
    }

    /// Expands the cross-product into the flat job list, in a deterministic
    /// order: topology, mechanism, traffic, scenario, root, VC budget, load,
    /// seed (innermost; with `replicas`, the derived replica seeds).
    pub fn expand(&self) -> Result<Vec<JobSpec>, String> {
        self.validate()?;
        let none_str = [None];
        let opt_strings = |dim: &Option<Vec<String>>| -> Vec<Option<String>> {
            match dim {
                Some(values) => values.iter().cloned().map(Some).collect(),
                None => none_str.to_vec(),
            }
        };
        let mechanisms = opt_strings(&self.mechanisms);
        let traffics = opt_strings(&self.traffics);
        let scenarios = opt_strings(&self.scenarios);
        let roots = opt_strings(&self.roots);
        let vc_budgets: Vec<Option<usize>> = match &self.vc_counts {
            Some(values) => values.iter().copied().map(Some).collect(),
            None => vec![self.vcs],
        };
        let loads: Vec<Option<f64>> = match &self.loads {
            Some(values) => values.iter().copied().map(Some).collect(),
            None => vec![None],
        };
        let seeds = self.replica_seeds();

        let mut jobs = Vec::new();
        for topology in &self.topologies {
            for mechanism in &mechanisms {
                for traffic in &traffics {
                    for scenario in &scenarios {
                        for root in &roots {
                            for &vcs in &vc_budgets {
                                for load in &loads {
                                    for &seed in &seeds {
                                        jobs.push(JobSpec {
                                            campaign: self.name.clone(),
                                            kind: self.kind().to_string(),
                                            sides: topology.sides.clone(),
                                            concentration: topology.concentration,
                                            mechanism: mechanism.clone(),
                                            traffic: traffic.clone(),
                                            scenario: scenario.clone(),
                                            root: root.clone(),
                                            load: *load,
                                            seed,
                                            vcs,
                                            warmup: self.warmup,
                                            measure: self.measure,
                                            packets_per_server: self.packets_per_server,
                                            sample_window: self.sample_window,
                                            rng: self.rng.clone(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(jobs)
    }
}

/// Parses a campaign spec from TOML text.
pub fn spec_from_toml(text: &str) -> Result<CampaignSpec, String> {
    let value = crate::toml::parse(text).map_err(|e| format!("TOML parse error: {e}"))?;
    serde::Deserialize::deserialize(&value).map_err(|e| format!("invalid campaign spec: {e}"))
}

/// Parses a campaign spec from JSON text.
pub fn spec_from_json(text: &str) -> Result<CampaignSpec, String> {
    serde_json::from_str(text).map_err(|e| format!("invalid campaign spec: {e}"))
}

/// Loads a campaign spec from a `.toml` or `.json` file (by extension;
/// unknown extensions try TOML first, then JSON).
pub fn load_spec_file(path: &Path) -> Result<CampaignSpec, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("json") => spec_from_json(&text),
        Some("toml") => spec_from_toml(&text),
        _ => spec_from_toml(&text).or_else(|toml_err| {
            spec_from_json(&text).map_err(|json_err| {
                format!("not parseable as TOML ({toml_err}) nor JSON ({json_err})")
            })
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> CampaignSpec {
        CampaignSpec {
            name: "quick".to_string(),
            topologies: vec![TopologySpec {
                sides: vec![4, 4],
                concentration: None,
            }],
            mechanisms: Some(vec!["polsp".into(), "omnisp".into()]),
            traffics: Some(vec!["uniform".into()]),
            scenarios: Some(vec!["none".into(), "random:5:1".into()]),
            loads: Some(vec![0.2, 0.4]),
            seeds: Some(vec![1, 2, 3]),
            warmup: Some(100),
            measure: Some(200),
            ..CampaignSpec::default()
        }
    }

    #[test]
    fn expansion_is_a_full_cross_product_in_stable_order() {
        let jobs = quick_spec().expand().unwrap();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 3);
        // Innermost dimension is the seed.
        assert_eq!(jobs[0].seed, 1);
        assert_eq!(jobs[1].seed, 2);
        assert_eq!(jobs[2].seed, 3);
        assert_eq!(jobs[3].load, Some(0.4));
        // Outermost (after topology) is the mechanism.
        assert!(jobs[..12]
            .iter()
            .all(|j| j.mechanism.as_deref() == Some("polsp")));
        assert!(jobs[12..]
            .iter()
            .all(|j| j.mechanism.as_deref() == Some("omnisp")));
        // Expansion is deterministic.
        assert_eq!(jobs, quick_spec().expand().unwrap());
    }

    #[test]
    fn missing_dimensions_default_to_single_neutral_entries() {
        let spec = CampaignSpec {
            name: "analysis".to_string(),
            kind: Some("diameter".to_string()),
            topologies: vec![TopologySpec {
                sides: vec![4, 4, 4],
                concentration: None,
            }],
            scenarios: Some(vec!["random:100:7".into()]),
            seeds: Some(vec![7, 8]),
            ..CampaignSpec::default()
        };
        let jobs = spec.expand().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].kind, "diameter");
        assert_eq!(jobs[0].mechanism, None);
        assert_eq!(jobs[0].root, None);
        assert_eq!(jobs[0].load, None);
        assert_eq!(jobs[0].packets_per_server, None);
    }

    #[test]
    fn roots_and_vc_counts_are_grid_dimensions() {
        let spec = CampaignSpec {
            roots: Some(vec!["suggested".into(), "max-degree".into()]),
            vc_counts: Some(vec![2, 4, 6]),
            loads: Some(vec![0.4]),
            seeds: Some(vec![1]),
            scenarios: Some(vec!["star".into()]),
            ..quick_spec()
        };
        let jobs = spec.expand().unwrap();
        // 2 mechanisms x 1 traffic x 1 scenario x 2 roots x 3 VC budgets.
        assert_eq!(jobs.len(), 12);
        assert_eq!(jobs[0].root.as_deref(), Some("suggested"));
        assert_eq!(jobs[0].vcs, Some(2));
        assert_eq!(jobs[1].vcs, Some(4), "vcs vary inside a root");
        assert_eq!(jobs[3].root.as_deref(), Some("max-degree"));
        let label = jobs[3].label();
        assert!(label.contains("root=max-degree"), "{label}");
        assert!(label.contains("vcs=2"), "{label}");
    }

    #[test]
    fn batch_fields_reach_every_job() {
        let spec = CampaignSpec {
            kind: Some("batch".to_string()),
            loads: None,
            packets_per_server: Some(60),
            sample_window: Some(500),
            ..quick_spec()
        };
        let jobs = spec.expand().unwrap();
        assert!(jobs
            .iter()
            .all(|j| j.packets_per_server == Some(60) && j.sample_window == Some(500)));
        assert!(jobs[0].label().contains("packets=60"));
    }

    #[test]
    fn validation_rejects_bad_grids() {
        let mut s = quick_spec();
        s.topologies.clear();
        assert!(s.expand().is_err());

        let mut s = quick_spec();
        s.loads = Some(vec![1.5]);
        assert!(s.expand().is_err());

        let mut s = quick_spec();
        s.mechanisms = Some(vec![]);
        assert!(s.expand().is_err());

        let mut s = quick_spec();
        s.topologies[0].sides = vec![1, 4];
        assert!(s.expand().is_err());

        let mut s = quick_spec();
        s.vcs = Some(4);
        s.vc_counts = Some(vec![2, 4]);
        assert!(s.expand().unwrap_err().contains("mutually exclusive"));

        let mut s = quick_spec();
        s.vc_counts = Some(vec![]);
        assert!(s.expand().is_err());

        let mut s = quick_spec();
        s.roots = Some(vec![]);
        assert!(s.expand().is_err());

        let mut s = quick_spec();
        s.packets_per_server = Some(0);
        assert!(s.expand().is_err());

        let mut s = quick_spec();
        s.sample_window = Some(0);
        assert!(s.expand().is_err());
    }

    #[test]
    fn replicas_expand_into_consecutive_derived_seeds() {
        let spec = CampaignSpec {
            seeds: None,
            replicas: Some(3),
            loads: Some(vec![0.2]),
            scenarios: Some(vec!["none".into()]),
            mechanisms: Some(vec!["polsp".into()]),
            ..quick_spec()
        };
        let jobs = spec.expand().unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(
            jobs.iter().map(|j| j.seed).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "replica seeds derive from the default base seed 1"
        );

        // An explicit single seed becomes the replica base.
        let based = CampaignSpec {
            seeds: Some(vec![10]),
            ..spec.clone()
        };
        let jobs = based.expand().unwrap();
        assert_eq!(
            jobs.iter().map(|j| j.seed).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );

        // The first replica of a `replicas` spec is the same job as the old
        // single-seed grid point — existing stores stay fingerprint-valid.
        let legacy = CampaignSpec {
            replicas: None,
            seeds: Some(vec![1]),
            ..spec.clone()
        };
        assert_eq!(legacy.expand().unwrap()[0], spec.expand().unwrap()[0]);
    }

    #[test]
    fn replicas_reject_multi_seed_grids_and_zero() {
        let mut s = quick_spec();
        s.replicas = Some(4);
        // quick_spec has seeds = [1, 2, 3]: ambiguous replication.
        let err = s.expand().unwrap_err();
        assert!(err.contains("campaign `quick`"), "{err}");
        assert!(err.contains("multi-seed"), "{err}");

        let mut s = quick_spec();
        s.seeds = Some(vec![7]);
        s.replicas = Some(4);
        assert!(s.expand().is_ok(), "a single base seed is fine");

        let mut s = quick_spec();
        s.seeds = None;
        s.replicas = Some(0);
        let err = s.expand().unwrap_err();
        assert!(err.contains("campaign `quick`"), "{err}");
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn partitions_knob_validates_but_never_reaches_jobs() {
        let mut s = quick_spec();
        s.partitions = Some(0);
        let err = s.validate().unwrap_err();
        assert!(err.contains("`partitions` must be at least 1"), "{err}");

        // Partitions are run tuning: the expanded jobs (and therefore the
        // fingerprints and store bytes) are identical for every value.
        let mut p1 = quick_spec();
        p1.partitions = Some(1);
        let mut p4 = quick_spec();
        p4.partitions = Some(4);
        assert_eq!(p1.expand().unwrap(), p4.expand().unwrap());
        assert_eq!(p1.expand().unwrap(), quick_spec().expand().unwrap());
    }

    #[test]
    fn rng_contract_reaches_every_job_and_is_validated() {
        let spec = CampaignSpec {
            rng: Some("v2".to_string()),
            ..quick_spec()
        };
        let jobs = spec.expand().unwrap();
        assert!(jobs.iter().all(|j| j.rng.as_deref() == Some("v2")));
        assert!(jobs[0].label().contains("rng=v2"), "{}", jobs[0].label());

        // Absent = v1 (the pre-versioning contract): no rng in the jobs, so
        // legacy stores keep their fingerprints.
        let legacy = quick_spec().expand().unwrap();
        assert!(legacy.iter().all(|j| j.rng.is_none()));
        assert!(!legacy[0].label().contains("rng="));

        let mut bad = quick_spec();
        bad.rng = Some("v3".to_string());
        let err = bad.expand().unwrap_err();
        assert!(err.contains("unknown RNG contract `v3`"), "{err}");
    }

    #[test]
    fn job_serialization_omits_unset_rng_entirely() {
        // Store records embed the job JSON verbatim: an unset contract must
        // serialize exactly as it did before the field existed (no
        // `"rng":null`), or re-finalizing a legacy store changes its bytes.
        let job = JobSpec {
            campaign: "c".into(),
            sides: vec![4, 4],
            ..JobSpec::default()
        };
        let json = serde_json::to_string(&Serialize::serialize(&job)).unwrap();
        assert!(!json.contains("rng"), "{json}");
        assert!(json.contains("\"sample_window\":null"), "{json}");

        let mut v2 = job.clone();
        v2.rng = Some("v2".into());
        let json = serde_json::to_string(&Serialize::serialize(&v2)).unwrap();
        assert!(json.ends_with("\"rng\":\"v2\"}"), "{json}");

        // And both shapes round-trip through Deserialize.
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v2);
        let legacy_json = serde_json::to_string(&Serialize::serialize(&job)).unwrap();
        let back: JobSpec = serde_json::from_str(&legacy_json).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    fn duplicate_seeds_are_rejected_naming_the_spec() {
        let mut s = quick_spec();
        s.seeds = Some(vec![1, 2, 1]);
        let err = s.expand().unwrap_err();
        assert!(err.contains("campaign `quick`"), "{err}");
        assert!(err.contains("duplicate seed 1"), "{err}");
    }

    #[test]
    fn toml_and_json_specs_agree() {
        let toml_text = r#"
            name = "demo"
            mechanisms = ["polsp"]
            traffics = ["uniform"]
            scenarios = ["none"]
            loads = [0.3]
            seeds = [1, 2]
            warmup = 50
            measure = 100

            [[topologies]]
            sides = [4, 4]
            concentration = 4
        "#;
        let json_text = r#"{
            "name": "demo",
            "topologies": [{"sides": [4, 4], "concentration": 4}],
            "mechanisms": ["polsp"],
            "traffics": ["uniform"],
            "scenarios": ["none"],
            "loads": [0.3],
            "seeds": [1, 2],
            "warmup": 50,
            "measure": 100
        }"#;
        let from_toml = spec_from_toml(toml_text).unwrap();
        let from_json = spec_from_json(json_text).unwrap();
        assert_eq!(from_toml, from_json);
        assert_eq!(from_toml.expand().unwrap().len(), 2);
    }

    #[test]
    fn job_labels_are_informative() {
        let jobs = quick_spec().expand().unwrap();
        let label = jobs[0].label();
        assert!(label.contains("4x4"));
        assert!(label.contains("polsp"));
        assert!(label.contains("seed=1"));
    }
}
