//! Per-job wall-clock sidecar: the `<store>.timings.jsonl` companion file.
//!
//! Wall-clock durations are **observations about the host**, not about the
//! experiment: they vary with load, hardware and worker count, so they must
//! never enter the byte-deterministic result store. They still matter — a
//! campaign planner wants to know which grid cells dominate the runtime —
//! so every executed job appends one line here, and `--report --timings`
//! renders the slowest-jobs table from it.
//!
//! The sidecar is append-only JSONL like the store, but is *not* rewritten
//! on finalize: it is an accumulating log (resumed and distributed runs
//! append to it), and consumers sort it themselves.

use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// One timed job execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingRecord {
    /// The job fingerprint.
    pub fp: String,
    /// The job's human label (see [`crate::spec::JobSpec::label`]).
    pub label: String,
    /// Wall-clock milliseconds the job took.
    pub millis: u64,
    /// Who executed it: `"local"` for in-process campaigns, the worker id
    /// for distributed ones.
    pub worker: String,
}

/// The timings sidecar path of a result store:
/// `results/grid.jsonl` → `results/grid.timings.jsonl`.
pub fn timings_path(store: &Path) -> PathBuf {
    store.with_extension("timings.jsonl")
}

/// An append-only per-job timing log.
#[derive(Debug)]
pub struct TimingsLog {
    writer: BufWriter<File>,
}

impl TimingsLog {
    /// Opens (or creates) the log at `path` for appending.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(TimingsLog {
            writer: BufWriter::new(file),
        })
    }

    /// Appends one timing record (flushed immediately).
    pub fn append(&mut self, record: &TimingRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record).expect("timing record serializes");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }
}

/// Loads every parseable timing record from `path`, in file order.
/// Unparseable lines (a truncated tail) are skipped.
pub fn load_timings(path: &Path) -> std::io::Result<Vec<TimingRecord>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<TimingRecord>(l).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_timings(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("surepath-runner-timings-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.timings.jsonl", std::process::id()))
    }

    #[test]
    fn timings_path_derives_from_the_store_path() {
        assert_eq!(
            timings_path(Path::new("results/grid.jsonl")),
            PathBuf::from("results/grid.timings.jsonl")
        );
    }

    #[test]
    fn append_load_round_trips_and_tolerates_corruption() {
        let path = temp_timings("round-trip");
        let _ = std::fs::remove_file(&path);
        let records = vec![
            TimingRecord {
                fp: "aaaa".into(),
                label: "4x4 / polsp / seed=1".into(),
                millis: 120,
                worker: "local".into(),
            },
            TimingRecord {
                fp: "bbbb".into(),
                label: "4x4 / polsp / seed=2".into(),
                millis: 95,
                worker: "worker-2".into(),
            },
        ];
        {
            let mut log = TimingsLog::open(&path).unwrap();
            for r in &records {
                log.append(r).unwrap();
            }
        }
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"fp\":\"cccc\",\"mil").unwrap();
        }
        let loaded = load_timings(&path).unwrap();
        assert_eq!(loaded, records);
        let _ = std::fs::remove_file(&path);
    }
}
