//! Derive macros for the vendored `serde` stand-in (see `crates/compat/serde`).
//!
//! The build environment has no access to crates.io, so this crate implements
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` from scratch on top of
//! `proc_macro` alone (no `syn`/`quote`). It supports the shapes this
//! workspace actually uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype and general),
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation),
//!
//! and intentionally rejects generics and `#[serde(...)]` attributes, which
//! the workspace does not use.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item the derive is attached to.
enum Body {
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<String>),
    /// `struct S(T, U);`
    TupleStruct(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

struct Item {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in does not support generic types (on `{name}`)");
    }
    let body = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    };
    Item { name, body }
}

/// Advances `i` past doc comments / attributes and visibility modifiers.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(super)` carry a parenthesised group.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: T, b: U, ...` into the list of field names, tracking angle
/// bracket depth so commas inside `Vec<(A, B)>`-style types do not split.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances `i` past one type, stopping at a top-level `,` (angle-depth aware).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                ',' if angle_depth == 0 => return,
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth -= 1, // skip the `>` of `->`
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde derive stand-in does not support explicit discriminants");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(trait_name: &str, type_name: &str) -> String {
    format!(
        "#[automatically_derived]\n#[allow(clippy::all, clippy::pedantic, unused_variables)]\n\
         impl ::serde::{trait_name} for {type_name} {{\n"
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = impl_header("Serialize", name);
    out.push_str("fn serialize(&self) -> ::serde::Value {\n");
    match &item.body {
        Body::NamedStruct(fields) => {
            out.push_str("let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                out.push_str(&format!(
                    "fields.push((String::from(\"{f}\"), ::serde::Serialize::serialize(&self.{f})));\n"
                ));
            }
            out.push_str("::serde::Value::Object(fields)\n");
        }
        Body::TupleStruct(1) => {
            out.push_str("::serde::Serialize::serialize(&self.0)\n");
        }
        Body::TupleStruct(n) => {
            out.push_str("::serde::Value::Array(vec![\n");
            for idx in 0..*n {
                out.push_str(&format!("::serde::Serialize::serialize(&self.{idx}),\n"));
            }
            out.push_str("])\n");
        }
        Body::Enum(variants) => {
            out.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => out.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), \
                         ::serde::Serialize::serialize(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        out.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), \
                             ::serde::Value::Array(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binders = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "fields.push((String::from(\"{f}\"), ::serde::Serialize::serialize({f})));\n"
                            ));
                        }
                        out.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => {{\n\
                             let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(fields))])\n\
                             }},\n"
                        ));
                    }
                }
            }
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = impl_header("Deserialize", name);
    out.push_str(
        "fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {\n",
    );
    match &item.body {
        Body::NamedStruct(fields) => {
            out.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                out.push_str(&format!("{f}: ::serde::de_field(value, \"{f}\")?,\n"));
            }
            out.push_str("})\n");
        }
        Body::TupleStruct(1) => {
            out.push_str(&format!(
                "Ok({name}(::serde::Deserialize::deserialize(value)?))\n"
            ));
        }
        Body::TupleStruct(n) => {
            out.push_str(&format!(
                "let items = ::serde::de_tuple(value, \"{name}\", {n})?;\n"
            ));
            let args: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                .collect();
            out.push_str(&format!("Ok({name}({}))\n", args.join(", ")));
        }
        Body::Enum(variants) => {
            out.push_str("match value {\n");
            // Unit variants arrive as plain strings.
            out.push_str("::serde::Value::String(s) => match s.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    out.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                }
            }
            out.push_str(&format!(
                "other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n}},\n"
            ));
            // Data variants arrive as single-entry objects.
            out.push_str(
                "::serde::Value::Object(entries) if entries.len() == 1 => {\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => out.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let args: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                            .collect();
                        out.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let items = ::serde::de_tuple(inner, \"{name}::{vn}\", {n})?;\n\
                             Ok({name}::{vn}({}))\n}},\n",
                            args.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!("{f}: ::serde::de_field(inner, \"{f}\")?,\n"));
                        }
                        out.push_str(&format!("\"{vn}\" => Ok({name}::{vn} {{\n{inits}}}),\n"));
                    }
                }
            }
            out.push_str(&format!(
                "other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n}}\n}},\n"
            ));
            out.push_str(&format!(
                "_ => Err(::serde::Error::type_mismatch(\"{name} enum\", value)),\n}}\n"
            ));
        }
    }
    out.push_str("}\n}\n");
    out
}
