//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the slice of `rand` the workspace uses: the [`RngCore`] / [`SeedableRng`]
//! traits, the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`seq::SliceRandom`] (`shuffle`, `choose`), [`rngs::mock::StepRng`], a
//! [`thread_rng`], and [`distributions::Binomial`] (an exact, cross-platform
//! deterministic counting sampler). Statistical quality matches the original
//! for the purposes of this simulator (the default generator is ChaCha8,
//! vendored separately as `rand_chacha`).

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Error type for fallible RNG operations (infallible here, kept for API
/// compatibility with `rand_core::Error` in signatures).
#[derive(Clone, Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RNG error")
    }
}

impl std::error::Error for Error {}

/// A source of randomness: the core trait every generator implements.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`fill_bytes`](RngCore::fill_bytes).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 the
    /// same way `rand_core` does, so low-entropy seeds like 0, 1, 2 still
    /// produce well-distributed states.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real rand), used by [`Rng::gen`].
pub trait SampleStandard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1), like rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Rejection sampling to avoid modulo bias.
                let zone = u128::from(u64::MAX) + 1 - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let draw = u128::from(rng.next_u64());
                    if draw < zone {
                        return (low as i128 + (draw % span) as i128) as $ty;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A process-global, loosely seeded generator, for callers that explicitly
/// opt out of reproducibility. Experiment code should prefer seeded
/// generators; this exists for API compatibility.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::mock::StepRng;

    #[test]
    fn step_rng_counts_up() {
        let mut rng = StepRng::new(5, 2);
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 7);
        assert_eq!(rng.next_u32(), 9);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = crate::thread_rng();
        let mut seen = [false; 8];
        for _ in 0..512 {
            let v = rng.gen_range(0..8usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = crate::thread_rng();
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = crate::thread_rng();
        for _ in 0..100 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use crate::seq::SliceRandom;
        let mut rng = StepRng::new(1, 0x9E3779B97F4A7C15);
        let mut v: Vec<usize> = (0..16).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }
}
