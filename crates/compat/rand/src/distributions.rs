//! Non-uniform distributions. Currently: [`Binomial`], the counting sampler
//! behind the simulator's RNG contract v2.

use crate::{RngCore, SampleStandard};

/// How far the inverse-transform walk may run before the draw is retried,
/// following the convention of `rand_distr`'s BINV implementation. With the
/// chunk means this crate uses (≤ ~10) the retry probability is negligible
/// (the walk length is a binomial tail ~100 standard deviations out).
const BINV_MAX_X: u64 = 110;

/// The binomial distribution `Binomial(n, p)`: the number of successes in
/// `n` independent Bernoulli trials of probability `p`.
///
/// Sampling is **exact** (inverse transform over the true pmf, not a normal
/// approximation) and **deterministic across platforms**: the setup and the
/// per-draw walk use only IEEE-754 multiplications, divisions, additions and
/// comparisons — no `exp`/`ln`, whose libm implementations vary by platform.
/// Exactness for large `n·p` comes from decomposition instead of BTPE
/// rejection: `Binomial(n, p)` is the sum of independent binomials over any
/// partition of the `n` trials, so the sampler splits `n` into chunks of
/// `min(n, ⌊10/p⌋)` trials (each chunk mean ≤ ~10, so its `q^chunk` setup
/// constant stays far from underflow) and draws each chunk with the classic
/// BINV inverse-transform walk:
///
/// ```text
/// r ← q^n;  u ~ U[0,1);  x ← 0
/// while u > r:  u -= r;  x += 1;  r *= (n+1-x)/x · p/q
/// return x
/// ```
///
/// Cost per draw is `O(n·p)` uniform-free arithmetic plus one uniform draw
/// per chunk — independent of `n` at fixed mean, which is the property the
/// simulator's rate-mode generation relies on.
#[derive(Clone, Copy, Debug)]
pub struct Binomial {
    n: u64,
    /// Sample `n - X` with success probability `1 - p` when `p > 1/2`, so
    /// the walk always runs on the small side.
    flipped: bool,
    kind: Kind,
}

#[derive(Clone, Copy, Debug)]
enum Kind {
    /// Degenerate: `p ∈ {0, 1}` (after flipping) or `n = 0`.
    Constant(u64),
    Chunked {
        /// `p' / q'` (after flipping).
        s: f64,
        /// Number of full chunks.
        full_chunks: u64,
        /// `q'^chunk`.
        r0_chunk: f64,
        /// `(chunk + 1) · s`.
        a_chunk: f64,
        /// Trials in the remainder chunk (0 if `chunk` divides `n`).
        rem: u64,
        /// `q'^rem`.
        r0_rem: f64,
        /// `(rem + 1) · s`.
        a_rem: f64,
    },
}

impl Binomial {
    /// Builds a sampler for `Binomial(n, p)`.
    ///
    /// # Panics
    /// Panics unless `p` is a probability (`0 ≤ p ≤ 1`).
    pub fn new(n: u64, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "Binomial: p = {p} is not a probability"
        );
        let flipped = p > 0.5;
        let p_eff = if flipped { 1.0 - p } else { p };
        if n == 0 || p_eff == 0.0 {
            return Binomial {
                n,
                flipped,
                kind: Kind::Constant(0),
            };
        }
        // Chunk size keeps each chunk's mean ≤ ~10 so q^chunk never
        // underflows (q^chunk ≥ e^(-10/(1-p')) ≥ e^-20 for p' ≤ 1/2).
        let chunk = ((10.0 / p_eff).floor()).clamp(1.0, n as f64) as u64;
        let q = 1.0 - p_eff;
        let s = p_eff / q;
        let full_chunks = n / chunk;
        let rem = n % chunk;
        Binomial {
            n,
            flipped,
            kind: Kind::Chunked {
                s,
                full_chunks,
                r0_chunk: pow_u64(q, chunk),
                a_chunk: (chunk + 1) as f64 * s,
                rem,
                r0_rem: pow_u64(q, rem),
                a_rem: (rem + 1) as f64 * s,
            },
        }
    }

    /// The number of trials `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one value in `[0, n]`.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let successes = match self.kind {
            Kind::Constant(k) => k,
            Kind::Chunked {
                s,
                full_chunks,
                r0_chunk,
                a_chunk,
                rem,
                r0_rem,
                a_rem,
            } => {
                let mut total = 0;
                for _ in 0..full_chunks {
                    total += binv(rng, r0_chunk, a_chunk, s);
                }
                if rem > 0 {
                    total += binv(rng, r0_rem, a_rem, s);
                }
                total
            }
        };
        if self.flipped {
            self.n - successes
        } else {
            successes
        }
    }
}

/// `base^exp` by binary exponentiation: the deterministic, multiply-only
/// power the setup constants are defined with.
fn pow_u64(base: f64, mut exp: u64) -> f64 {
    let mut result = 1.0;
    let mut b = base;
    while exp > 0 {
        if exp & 1 == 1 {
            result *= b;
        }
        b *= b;
        exp >>= 1;
    }
    result
}

/// One BINV inverse-transform walk: consumes exactly one uniform draw per
/// attempt (retries only on the astronomically unlikely `x > BINV_MAX_X`).
fn binv<R: RngCore + ?Sized>(rng: &mut R, r0: f64, a: f64, s: f64) -> u64 {
    loop {
        let mut r = r0;
        let mut u = f64::sample(rng);
        let mut x = 0u64;
        while u > r {
            u -= r;
            x += 1;
            if x > BINV_MAX_X {
                break;
            }
            r *= a / x as f64 - s;
        }
        if x <= BINV_MAX_X {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::mock::StepRng;

    /// A SplitMix64 generator for statistical checks (no dependency on
    /// rand_chacha from inside this crate).
    struct Mix(u64);

    impl RngCore for Mix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), crate::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = Mix(1);
        assert_eq!(Binomial::new(0, 0.3).sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 0.0).sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 1.0).sample(&mut rng), 100);
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = Mix(7);
        for &(n, p) in &[(1u64, 0.5), (10, 0.01), (1000, 0.003), (50, 0.97)] {
            let b = Binomial::new(n, p);
            for _ in 0..500 {
                assert!(b.sample(&mut rng) <= n);
            }
        }
    }

    #[test]
    fn mean_tracks_np_at_simulator_scales() {
        // The operating point of rate-mode generation: n = servers,
        // p = load / packet_length.
        for &(n, p, seed) in &[
            (4096u64, 0.05 / 16.0, 11u64),
            (4096, 0.7 / 16.0, 12),
            (256, 1.0 / 16.0, 13),
            (64, 0.9, 14),
        ] {
            let b = Binomial::new(n, p);
            let mut rng = Mix(seed);
            let draws = 4000;
            let sum: u64 = (0..draws).map(|_| b.sample(&mut rng)).sum();
            let mean = sum as f64 / draws as f64;
            let expect = n as f64 * p;
            let sigma = (n as f64 * p * (1.0 - p) / draws as f64).sqrt();
            assert!(
                (mean - expect).abs() < 6.0 * sigma + 1e-9,
                "n={n} p={p}: mean {mean} vs expected {expect} (σ̂ {sigma})"
            );
        }
    }

    #[test]
    fn variance_tracks_npq() {
        let b = Binomial::new(2048, 0.01);
        let mut rng = Mix(99);
        let draws = 6000;
        let samples: Vec<f64> = (0..draws).map(|_| b.sample(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / draws as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / draws as f64;
        let expect = 2048.0 * 0.01 * 0.99;
        assert!(
            (var - expect).abs() < 0.15 * expect,
            "variance {var} vs expected {expect}"
        );
    }

    #[test]
    fn flipped_side_matches_complement() {
        // Binomial(n, p) and n - Binomial(n, 1-p) are the same distribution;
        // the sampler flips internally, so both directions must land near np.
        let n = 500u64;
        for &p in &[0.6, 0.85, 0.99] {
            let b = Binomial::new(n, p);
            let mut rng = Mix(5);
            let draws = 3000;
            let mean = (0..draws).map(|_| b.sample(&mut rng)).sum::<u64>() as f64 / draws as f64;
            let expect = n as f64 * p;
            let sigma = (n as f64 * p * (1.0 - p) / draws as f64).sqrt();
            assert!((mean - expect).abs() < 6.0 * sigma + 1e-9);
        }
    }

    #[test]
    fn deterministic_for_a_fixed_generator() {
        let b = Binomial::new(4096, 0.025);
        let a: Vec<u64> = {
            let mut rng = Mix(42);
            (0..32).map(|_| b.sample(&mut rng)).collect()
        };
        let c: Vec<u64> = {
            let mut rng = Mix(42);
            (0..32).map(|_| b.sample(&mut rng)).collect()
        };
        assert_eq!(a, c);
    }

    #[test]
    fn zero_probability_consumes_no_randomness() {
        // StepRng panics on an empty range only through use; a constant
        // sampler must not touch the generator at all, so interleaving it
        // with real draws must not shift the stream.
        let mut rng = StepRng::new(3, 7);
        let first = rng.next_u64();
        let b = Binomial::new(1000, 0.0);
        let _ = b.sample(&mut rng);
        let second = rng.next_u64();
        assert_eq!(second, first + 7);
    }

    #[test]
    fn pow_u64_matches_repeated_multiplication() {
        for &(base, exp) in &[(0.5f64, 10u64), (0.99, 137), (0.999968, 3200)] {
            let mut manual = 1.0;
            for _ in 0..exp {
                manual *= base;
            }
            let fast = pow_u64(base, exp);
            assert!(
                (manual - fast).abs() <= manual * 1e-12,
                "{base}^{exp}: {fast} vs {manual}"
            );
        }
        assert_eq!(pow_u64(0.25, 0), 1.0);
    }
}
