//! Concrete generators: the mock [`StepRng`](mock::StepRng) and
//! [`ThreadRng`].

use crate::{Error, RngCore};

/// Mock generators for tests.
pub mod mock {
    use super::*;

    /// A deterministic counter "generator": yields `initial`,
    /// `initial + increment`, `initial + 2*increment`, … — mirrors
    /// `rand::rngs::mock::StepRng`.
    #[derive(Clone, Debug)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates a new `StepRng`.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                value: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.value;
            self.value = self.value.wrapping_add(self.increment);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                for (dst, src) in chunk.iter_mut().zip(bytes) {
                    *dst = src;
                }
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

/// A loosely seeded per-call generator (SplitMix64 core). Unlike real rand's
/// thread-local lazily-seeded ChaCha, this derives its seed from a global
/// counter and the current time — adequate for its only legitimate use here:
/// explicitly non-reproducible exploration.
#[derive(Clone, Debug)]
pub struct ThreadRng {
    state: u64,
}

impl ThreadRng {
    pub(crate) fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0x243F_6A88_85A3_08D3);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        let unique = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
        ThreadRng {
            state: nanos ^ unique,
        }
    }
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 step.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(bytes) {
                *dst = src;
            }
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
