//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 stream-cipher
//! generator implementing the vendored `rand` traits.
//!
//! The keystream is a faithful ChaCha implementation (8 rounds, original djb
//! layout with a 64-bit block counter), so statistical quality matches the
//! real crate. Word-level output order may differ from upstream
//! `rand_chacha`, which is fine here: the workspace never relies on golden
//! vectors, only on determinism and quality.

use rand::{Error, RngCore, SeedableRng};

/// A deterministic, seedable ChaCha generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block (constants, key, counter, nonce).
    state: [u32; 16],
    /// The current output block.
    buffer: [u32; 16],
    /// Next unread word of `buffer`; 16 means exhausted.
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buffer = working;
        self.index = 0;
        // 64-bit block counter in words 12–13.
        let (low, carry) = self.state[12].overflowing_add(1);
        self.state[12] = low;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter and nonce) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = self.next_u32() as u64;
        let high = self.next_u32() as u64;
        low | (high << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            for (dst, src) in chunk.iter_mut().zip(bytes) {
                *dst = src;
            }
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_block_matches_chacha_structure() {
        // With an all-zero key the first block must differ from the raw
        // state (the rounds actually ran) and be stable across calls.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let first = rng.next_u32();
        let mut again = ChaCha8Rng::from_seed([0; 32]);
        assert_eq!(first, again.next_u32());
        assert_ne!(first, CHACHA_CONSTANTS[0]);
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Cheap sanity check on bit balance: ~50% ones over 64k bits.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let ratio = ones as f64 / (1024.0 * 64.0);
        assert!((0.48..0.52).contains(&ratio), "bit ratio {ratio}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            rng.next_u32();
        }
        let mut cloned = rng.clone();
        assert_eq!(rng.next_u64(), cloned.next_u64());
    }
}
