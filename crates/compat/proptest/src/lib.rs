//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`Strategy`] trait (ranges, `prop::collection::vec`, `prop_filter`,
//! `prop_map`, [`Just`]), the `proptest!` macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with its message immediately. Case generation is fully deterministic —
//! seeded from the test name and case index — so failures reproduce across
//! runs and machines.

/// Configuration for one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed — the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs — the case is skipped.
    Reject,
}

/// The deterministic RNG driving case generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let draw = self.next_u64();
            if draw < zone {
                return draw % bound;
            }
        }
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Keeps only values satisfying `predicate` (regenerating otherwise).
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            predicate,
        }
    }

    /// Transforms generated values with `f`.
    fn prop_map<F, O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let candidate = self.inner.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 candidates in a row",
            self.whence
        );
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span.saturating_add(1).max(1)) as i128) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// The `prop::` namespace of real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// An inclusive length range, converted from the integer ranges real
        /// proptest accepts (`1..40`, `1..=3`, a bare `5`, …).
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        macro_rules! size_range_from_int_ranges {
            ($($ty:ty),*) => {$(
                impl From<std::ops::Range<$ty>> for SizeRange {
                    fn from(r: std::ops::Range<$ty>) -> Self {
                        assert!(r.start < r.end, "empty length range");
                        SizeRange { lo: r.start as usize, hi: (r.end - 1) as usize }
                    }
                }
                impl From<std::ops::RangeInclusive<$ty>> for SizeRange {
                    fn from(r: std::ops::RangeInclusive<$ty>) -> Self {
                        assert!(r.start() <= r.end(), "empty length range");
                        SizeRange { lo: *r.start() as usize, hi: *r.end() as usize }
                    }
                }
            )*};
        }

        size_range_from_int_ranges!(usize, i32, u32);

        /// Strategy for `Vec`s whose length is drawn from `len` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.hi - self.len.lo) as u64;
                let n = self.len.lo + rng.below(span + 1) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Drives one property test: `cases` deterministic cases seeded from the
/// test name. Called by the `proptest!` macro expansion.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut name_hash = FNV_OFFSET;
    for b in name.bytes() {
        name_hash ^= u64::from(b);
        name_hash = name_hash.wrapping_mul(FNV_PRIME);
    }
    let mut rejected = 0u32;
    for case_idx in 0..config.cases {
        let mut rng = TestRng::from_seed(name_hash ^ (u64::from(case_idx) << 32));
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(message)) => {
                panic!("property `{name}` failed at case {case_idx}: {message}");
            }
        }
    }
    assert!(
        rejected < config.cases,
        "property `{name}`: every case was rejected by prop_assume!"
    );
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// `prop_assume!(cond)`: skip the case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The `proptest! { ... }` block macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_proptest(config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                #[allow(unused_mut)]
                let mut body = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                body()
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = super::TestRng::from_seed(1);
        for _ in 0..200 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let w = Strategy::generate(&(2u64..=5), &mut rng);
            assert!((2..=5).contains(&w));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = super::TestRng::from_seed(2);
        let strat = prop::collection::vec(0usize..4, 1..=3);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let draw = || {
            let mut rng = super::TestRng::from_seed(77);
            Strategy::generate(&prop::collection::vec(0u64..1000, 5..=5), &mut rng)
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(a in 0usize..50, b in 1usize..10) {
            prop_assume!(a != 13);
            prop_assert!(a < 50);
            prop_assert_eq!(a * b / b, a);
            prop_assert_ne!(a + b, a);
        }
    }
}
