//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the API slice the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `iter`, `iter_batched`, `iter_batched_ref`, [`BatchSize`]) and measures
//! mean wall-clock time per iteration over a small, time-capped number of
//! samples. No statistics, plots or comparisons — just honest numbers so
//! `cargo bench` works offline.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Per-sample wall-clock budget: a bench function stops sampling once this
/// much time has been spent, whatever the requested sample count.
const TIME_CAP: Duration = Duration::from_secs(3);

/// How batched iterations group their setup allocations. The stand-in runs
/// one iteration per batch in every mode, so the variants only document
/// intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { sample_size: 10 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, 10, &mut f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many samples each bench in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks one function in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (printing nothing extra).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        budget: TIME_CAP,
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "  {id}: mean {mean:?}/iter (min {min:?}, max {max:?}, {} samples)",
        bencher.samples.len()
    );
}

/// Passed to each benchmark closure; records timing samples.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    sample_size: usize,
}

impl Bencher {
    fn record<O>(&mut self, mut one_iteration: impl FnMut() -> O) {
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(one_iteration());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, routine: F) {
        self.record(routine);
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }

    /// Like [`iter_batched`](Bencher::iter_batched) but hands the routine a
    /// mutable reference to the input.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
