//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no route to crates.io, so this workspace vendors
//! a minimal serialization framework under the `serde` name. Instead of
//! serde's visitor architecture it uses a concrete JSON-like [`Value`] tree:
//!
//! * [`Serialize`] converts a value into a [`Value`];
//! * [`Deserialize`] reconstructs a value from a [`&Value`](Value);
//! * `#[derive(Serialize, Deserialize)]` (from the vendored `serde_derive`)
//!   generates both, following real serde's default representations
//!   (structs as objects, enums externally tagged).
//!
//! The `serde_json` stand-in layers JSON text parsing/printing on top.

pub use serde_derive::{Deserialize, Serialize};

mod impls;
mod value;

pub use value::{Number, Value};

/// Serialization: convert `self` into a [`Value`] tree.
pub trait Serialize {
    /// Returns the value-tree representation of `self`.
    fn serialize(&self) -> Value;
}

/// Deserialization: reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of `value`.
    fn deserialize(value: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field is absent. `Option<T>`
    /// overrides this to return `None`, matching real serde's behaviour.
    #[doc(hidden)]
    fn deserialize_missing() -> Option<Self> {
        None
    }
}

/// A deserialization error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// A required field was absent.
    pub fn missing_field(field: &str) -> Self {
        Error(format!("missing field `{field}`"))
    }

    /// The value had the wrong shape.
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind_name()))
    }

    /// An enum tag did not match any variant.
    pub fn unknown_variant(enum_name: &str, tag: &str) -> Self {
        Error(format!("unknown variant `{tag}` of enum {enum_name}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Looks up struct field `name` in an object `value` and deserializes it.
/// Used by derived `Deserialize` impls.
#[doc(hidden)]
pub fn de_field<T: Deserialize>(value: &Value, name: &'static str) -> Result<T, Error> {
    let Value::Object(entries) = value else {
        return Err(Error::type_mismatch("object", value));
    };
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v),
        None => T::deserialize_missing().ok_or_else(|| Error::missing_field(name)),
    }
}

/// Checks that `value` is an array of exactly `len` items and returns it.
/// Used by derived impls for tuple structs and tuple enum variants.
#[doc(hidden)]
pub fn de_tuple<'v>(value: &'v Value, what: &str, len: usize) -> Result<&'v [Value], Error> {
    let Value::Array(items) = value else {
        return Err(Error::type_mismatch("array", value));
    };
    if items.len() != len {
        return Err(Error::custom(format!(
            "expected {len} elements for {what}, got {}",
            items.len()
        )));
    }
    Ok(items)
}
