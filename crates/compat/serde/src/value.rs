//! The JSON-like value tree shared by `serde` and `serde_json`.

/// A JSON number: signed, unsigned or floating point.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(v) => v as f64,
            Number::UInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(v) if v >= 0 => Some(v as u64),
            Number::Int(_) => None,
            Number::UInt(v) => Some(v),
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The number as `i64`, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                // One side is integral and the other is not: compare as f64
                // so 1 == 1.0 holds, like serde_json's Number semantics.
            }
        }
        self.as_f64() == other.as_f64()
    }
}

/// A dynamically typed JSON-like value.
///
/// Objects preserve insertion order (`Vec` of pairs, not a map), which keeps
/// serialization deterministic — the campaign result store relies on this for
/// byte-identical re-runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array of values.
    Array(Vec<Value>),
    /// An ordered list of key/value entries.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// A short name of the value's kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as the ordered entry list if it is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field access; missing keys and non-objects yield `Null`,
    /// matching `serde_json`'s indexing behaviour.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
