//! `Serialize` / `Deserialize` implementations for std types.

use crate::{Deserialize, Error, Number, Serialize, Value};

macro_rules! ser_de_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::Number(Number::UInt(*self as u64))
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::type_mismatch(stringify!($ty), value))?;
                <$ty>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

macro_rules! ser_de_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::UInt(v as u64))
                } else {
                    Value::Number(Number::Int(v))
                }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| Error::type_mismatch(stringify!($ty), value))?;
                <$ty>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() {
                    Value::Number(Number::Float(v))
                } else {
                    // serde_json serializes non-finite floats as null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Null => Ok(<$ty>::NAN),
                    _ => value
                        .as_f64()
                        .map(|v| v as $ty)
                        .ok_or_else(|| Error::type_mismatch(stringify!($ty), value)),
                }
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::type_mismatch("bool", value))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::type_mismatch("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::type_mismatch("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!(
                "expected single character, got {s:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::type_mismatch("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn deserialize_missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = crate::de_tuple(value, "2-tuple", 2)?;
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = crate::de_tuple(value, "3-tuple", 3)?;
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::type_mismatch("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}
