//! Offline stand-in for `serde_json`, layered over the vendored `serde`
//! stand-in's [`Value`] tree.
//!
//! Provides the slice of the real API this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], [`from_value`] and
//! [`Value`] with indexing. Output is deterministic: objects print in
//! insertion order and floats use Rust's shortest round-trip formatting.

pub use serde::{Number, Value};

mod parse;
mod print;

pub use parse::Error;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::write_compact(&value.serialize()))
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::write_pretty(&value.serialize()))
}

/// Parses a value of type `T` out of a JSON string.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse::parse(input)?;
    T::deserialize(&value).map_err(|e| Error::new(e.to_string()))
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize(&value).map_err(|e| Error::new(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_values() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "3.25",
            "\"hi \\\"there\\\"\"",
            "[1,2,3]",
            "{\"a\":1,\"b\":[true,null]}",
        ];
        for case in cases {
            let v: Value = from_str(case).unwrap();
            assert_eq!(to_string(&v).unwrap(), case, "round-trip of {case}");
        }
    }

    #[test]
    fn pretty_output_reparses() {
        let v: Value = from_str("{\"a\":[1,{\"b\":2}],\"c\":\"x\"}").unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("{\"a\":1} trailing").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn numbers_preserve_integerness() {
        let v: Value =
            from_str("{\"i\":42,\"n\":-3,\"f\":0.5,\"big\":18446744073709551615}").unwrap();
        assert_eq!(v["i"].as_u64(), Some(42));
        assert_eq!(v["n"].as_i64(), Some(-3));
        assert_eq!(v["f"].as_f64(), Some(0.5));
        assert_eq!(v["big"].as_u64(), Some(u64::MAX));
        assert_eq!(
            to_string(&v).unwrap(),
            "{\"i\":42,\"n\":-3,\"f\":0.5,\"big\":18446744073709551615}"
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original =
            Value::String("line\nbreak\ttab \"quote\" back\\slash \u{1} end".to_string());
        let text = to_string(&original).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, original);
    }
}
