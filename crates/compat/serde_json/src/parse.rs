//! A recursive-descent JSON parser producing [`Value`] trees.

use serde::{Number, Value};

/// A JSON parse / conversion error with position information where available.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Handle UTF-16 surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.error("invalid number"))
    }
}
