//! Deterministic JSON text output.

use serde::{Number, Value};

/// Compact one-line JSON.
pub fn write_compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Pretty JSON with 2-space indentation.
pub fn write_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::Int(v) => out.push_str(&v.to_string()),
        Number::UInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                // Rust's Display for f64 is shortest-round-trip, so output is
                // deterministic and reparses to the same value. Keep a `.0`
                // marker for integral floats so the text stays a float.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&v.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
