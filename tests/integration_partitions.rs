//! Partition invariance end to end: the engine's determinism contract says
//! intra-simulation partitioning (`SimConfig::partitions`) changes how a
//! simulation is stepped, never what it computes. These suites prove it at
//! the store level — the bytes a campaign writes are identical for every
//! partition count, locally and through the distributed fold — and at the
//! metrics level on a large 3-D topology.

use std::net::TcpListener;
use std::path::PathBuf;
use surepath::core::{
    run_campaign, run_job_tuned, CampaignSpec, Experiment, FaultScenario, RunTuning, TopologySpec,
    TrafficSpec, ViewCache,
};
use surepath::dist::{run_worker, serve, ServeOptions, WorkerOptions};
use surepath::routing::MechanismSpec;

mod common;
use common::test_threads;

/// A faulted multi-mechanism campaign: every routing mechanism family, a
/// healthy and a faulted scenario, two seeds — enough surface that a
/// partition-dependent divergence anywhere in the engine would move bytes.
fn faulted_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        topologies: vec![TopologySpec {
            sides: vec![4, 4],
            concentration: None,
        }],
        mechanisms: Some(vec!["minimal".into(), "omnisp".into(), "polsp".into()]),
        traffics: Some(vec!["uniform".into()]),
        scenarios: Some(vec!["none".into(), "random:6:5".into()]),
        loads: Some(vec![0.3]),
        seeds: Some(vec![1, 2]),
        vcs: Some(4),
        warmup: Some(100),
        measure: Some(250),
        ..CampaignSpec::default()
    }
}

fn temp_store(name: &str) -> PathBuf {
    common::temp_store("surepath-integration-partitions", name)
}

fn clean(path: &std::path::Path) {
    for suffix in ["jsonl", "manifest.jsonl", "timings.jsonl"] {
        let _ = std::fs::remove_file(path.with_extension(suffix));
    }
}

/// Runs `spec` locally at the given partition count and returns the store
/// bytes.
fn local_bytes_at(spec: &CampaignSpec, name: &str, partitions: usize) -> Vec<u8> {
    let mut spec = spec.clone();
    spec.partitions = Some(partitions);
    let path = temp_store(name);
    clean(&path);
    run_campaign(&spec, &path, Some(test_threads()), true).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    clean(&path);
    bytes
}

#[test]
fn faulted_campaign_stores_are_identical_at_p1_p2_p4() {
    let spec = faulted_spec("part-local");
    let p1 = local_bytes_at(&spec, "local-p1", 1);
    assert!(!p1.is_empty());
    for partitions in [2usize, 4] {
        assert_eq!(
            local_bytes_at(&spec, &format!("local-p{partitions}"), partitions),
            p1,
            "a campaign run at {partitions} partitions must write the P=1 bytes"
        );
    }
}

#[test]
fn distributed_fold_with_partitioned_workers_matches_the_p1_store() {
    // Two real-simulation TCP workers stepping their simulations at
    // *different* partition counts (1 and 4): the folded store must still
    // equal a plain local P=1 run byte for byte. This is the strongest
    // statement of the contract — partitioning is invisible even when
    // heterogeneous across a fleet.
    let spec = faulted_spec("part-dist");
    let jobs = spec.expand().unwrap();
    let path = temp_store("dist-fold");
    clean(&path);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handles: Vec<_> = [1usize, 4]
        .into_iter()
        .enumerate()
        .map(|(i, partitions)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let views = ViewCache::new();
                let tuning = RunTuning {
                    partitions,
                    views: Some(&views),
                };
                run_worker(
                    &addr,
                    &format!("part-worker-p{partitions}-{i}"),
                    &WorkerOptions {
                        threads: Some(2),
                        ..WorkerOptions::default()
                    },
                    |job| run_job_tuned(job, &tuning),
                )
            })
        })
        .collect();
    let outcome = serve(
        listener,
        &spec.name,
        &jobs,
        &path,
        &ServeOptions {
            quiet: true,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    for handle in handles {
        handle.join().unwrap().unwrap();
    }
    assert!(outcome.is_complete(), "{outcome:?}");
    let bytes = std::fs::read(&path).unwrap();
    clean(&path);
    assert_eq!(
        bytes,
        local_bytes_at(&spec, "dist-local", 1),
        "a fleet mixing partition counts must fold to the local P=1 bytes"
    );
}

/// The faulted PolSP experiment on the 16×16×16 HyperX (4096 switches) with
/// the given windows.
fn big_3d_experiment(warmup: u64, measure: u64) -> Experiment {
    let mut e = Experiment::paper_3d(MechanismSpec::PolSP, TrafficSpec::Uniform)
        .with_scenario(FaultScenario::Random { count: 20, seed: 9 });
    e.sides = vec![16, 16, 16];
    e.concentration = 16;
    e.sim.warmup_cycles = warmup;
    e.sim.measure_cycles = measure;
    e.sim.seed = 3;
    e
}

/// Sweeps the experiment over partition counts on one shared `Arc`ed
/// topology view (building the 4096-switch view once, not per run) and
/// asserts every run's metrics byte-match the first (P=1).
fn assert_partition_invariant_3d(base: &Experiment, partition_counts: &[usize]) {
    let view = base.build_view();
    let run = |partitions: usize| {
        let mut e = base.clone();
        e.sim.partitions = partitions;
        let mut sim = e.build_simulator_with_view(view.clone());
        serde_json::to_string(&sim.run_rate(0.2)).expect("metrics serialize")
    };
    assert_eq!(partition_counts[0], 1, "the first run is the reference");
    let p1 = run(1);
    for &partitions in &partition_counts[1..] {
        assert_eq!(
            run(partitions),
            p1,
            "16x16x16 metrics must be byte-identical at P={partitions}"
        );
    }
}

#[test]
fn big_3d_smoke_is_partition_invariant() {
    // Short windows on the full 16×16×16 paper topology: enough cycles for
    // cross-partition traffic to flow, quick enough for the default suite.
    // The full-length variant is `#[ignore]`d below.
    assert_partition_invariant_3d(&big_3d_experiment(30, 80), &[1, 2, 4]);
}

#[test]
#[ignore = "full-length 16x16x16 partition sweep; minutes of runtime"]
fn big_3d_full_run_is_partition_invariant() {
    assert_partition_invariant_3d(&big_3d_experiment(1_000, 3_000), &[1, 2, 4, 8]);
}
