//! Fault-injection scenario matrix for distributed campaigns, against the
//! *real* simulator: every scenario perturbs the coordinator/worker
//! conversation — flapping links that sever connections mid-frame, a
//! coordinator that dies mid-campaign and restarts, a campaign swap under a
//! reconnecting worker — and every surviving store is byte-compared against
//! a fault-free local run. The seeded [`FaultyProxy`] makes the failure
//! schedules reproducible: a given seed always injects the same ordeal.

use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;
use surepath::core::{run_campaign, run_job, CampaignSpec, TopologySpec};
use surepath::dist::{
    run_worker, serve, FaultConfig, FaultyProxy, ReconnectPolicy, ServeOptions, WorkerOptions,
};

mod common;
use common::test_threads;

fn tiny_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        topologies: vec![TopologySpec {
            sides: vec![4, 4],
            concentration: None,
        }],
        mechanisms: Some(vec!["omnisp".into(), "polsp".into()]),
        traffics: Some(vec!["uniform".into()]),
        scenarios: Some(vec!["none".into(), "random:6:5".into()]),
        loads: Some(vec![0.3]),
        seeds: Some(vec![1, 2]),
        vcs: Some(4),
        warmup: Some(100),
        measure: Some(250),
        ..CampaignSpec::default()
    }
}

fn temp_store(name: &str) -> PathBuf {
    common::temp_store("surepath-integration-dist-faults", name)
}

fn clean(path: &std::path::Path) {
    for suffix in ["jsonl", "manifest.jsonl", "timings.jsonl"] {
        let _ = std::fs::remove_file(path.with_extension(suffix));
    }
}

/// A local single-process run of the same spec: the byte ground truth.
fn local_bytes(spec: &CampaignSpec, name: &str) -> Vec<u8> {
    let path = temp_store(name);
    clean(&path);
    run_campaign(spec, &path, Some(test_threads()), true).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    clean(&path);
    bytes
}

fn worker_opts() -> WorkerOptions {
    WorkerOptions {
        threads: Some(2),
        // Generous budget: flapping links fail many attempts in a row only
        // if the coordinator stays gone; the counter resets per Welcome.
        reconnect: ReconnectPolicy::with(20, 50),
        ..WorkerOptions::default()
    }
}

fn quiet_serve() -> ServeOptions {
    ServeOptions {
        quiet: true,
        ..ServeOptions::default()
    }
}

/// Binds `addr`, retrying briefly: after a coordinator "restart" the old
/// listener has just closed and the kernel may not have released the port
/// yet.
fn bind_with_retry(addr: &str) -> TcpListener {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        match TcpListener::bind(addr) {
            Ok(listener) => return listener,
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("cannot rebind {addr}: {e}"),
        }
    }
}

/// Scenario: a flapping link. The worker talks to the coordinator only
/// through a fault proxy that severs every connection a fixed number of
/// operations in (half the time with a mid-frame truncation, so partial
/// frames hit the coordinator's reader). The worker must reconnect through
/// its backoff schedule until the grid drains; the coordinator must reclaim
/// each severed connection's leases at the re-Hello; and the final store
/// must match the fault-free local bytes.
#[test]
fn flapping_link_worker_reconnects_until_the_campaign_drains() {
    let spec = tiny_spec("dist-fault-flap");
    let jobs = spec.expand().unwrap();
    let path = temp_store("flap");
    clean(&path);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let coord_addr = listener.local_addr().unwrap().to_string();
    let server = {
        let (name, jobs, path) = (spec.name.clone(), jobs.clone(), path.clone());
        std::thread::spawn(move || serve(listener, &name, &jobs, &path, &quiet_serve()))
    };

    // Every connection survives exactly 10 operations per direction, then
    // the next one severs it — as a clean drop or a mid-frame truncation.
    // The grace floor guarantees forward progress each session, so the
    // campaign terminates however often the link flaps.
    let proxy = FaultyProxy::start(
        &coord_addr,
        FaultConfig {
            seed: 0xF1A9,
            drop_per_mille: 500,
            truncate_per_mille: 500,
            partial_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
            grace_ops: 10,
        },
    )
    .unwrap();
    let proxy_addr = proxy.addr.to_string();

    let worker =
        std::thread::spawn(move || run_worker(&proxy_addr, "flappy", &worker_opts(), run_job));
    let outcome = server.join().unwrap().unwrap();
    let worker_outcome = worker.join().unwrap().unwrap();

    assert!(outcome.is_complete(), "{outcome:?}");
    assert!(
        worker_outcome.reconnects >= 1,
        "the link flapped, the worker must have reconnected: {worker_outcome:?}"
    );
    assert!(
        outcome.reconnects >= 1,
        "the coordinator saw the re-Hellos: {outcome:?}"
    );
    assert!(proxy.drops() >= 1, "the proxy injected at least one drop");
    assert!(
        proxy.connections() >= 2,
        "reconnects dialed fresh connections"
    );
    proxy.stop();

    let bytes = std::fs::read(&path).unwrap();
    clean(&path);
    assert_eq!(
        bytes,
        local_bytes(&spec, "flap-local"),
        "a flapping link must not perturb the final bytes"
    );
}

/// Scenario: the coordinator dies mid-campaign and restarts on the same
/// address. The first serve stops (crash emulation: connections sever
/// without a goodbye), workers enter their reconnect loop, a second serve
/// on the same port resumes the unfinished fingerprints, and the workers
/// drain it with zero manual intervention. The final store must match the
/// fault-free local bytes.
#[test]
fn coordinator_restart_resumes_and_workers_auto_reconnect() {
    let spec = tiny_spec("dist-fault-restart");
    let jobs = spec.expand().unwrap();
    let path = temp_store("restart");
    clean(&path);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    // First serve: "crashes" after four deliveries.
    let first = {
        let (name, jobs, path) = (spec.name.clone(), jobs.clone(), path.clone());
        std::thread::spawn(move || {
            serve(
                listener,
                &name,
                &jobs,
                &path,
                &ServeOptions {
                    stop_after_deliveries: Some(4),
                    quiet: true,
                    ..ServeOptions::default()
                },
            )
        })
    };
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(&addr, &format!("survivor-{i}"), &worker_opts(), run_job)
            })
        })
        .collect();

    let first_outcome = first.join().unwrap().unwrap();
    assert!(first_outcome.stopped, "{first_outcome:?}");
    assert!(!first_outcome.is_complete(), "{first_outcome:?}");
    assert!(
        first_outcome.executed >= 4,
        "the budget deliveries landed before the crash: {first_outcome:?}"
    );

    // Restart on the same port while the workers are mid-backoff. They must
    // find it, re-Hello, and drain the rest — no manual intervention.
    let listener = bind_with_retry(&addr);
    let second = {
        let (name, jobs, path) = (spec.name.clone(), jobs.clone(), path.clone());
        std::thread::spawn(move || serve(listener, &name, &jobs, &path, &quiet_serve()))
    };
    let second_outcome = second.join().unwrap().unwrap();
    let worker_outcomes: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().unwrap().unwrap())
        .collect();

    assert!(second_outcome.is_complete(), "{second_outcome:?}");
    assert!(
        second_outcome.skipped >= 4,
        "the restart resumed, not re-ran, the crashed run's results: {second_outcome:?}"
    );
    assert!(
        worker_outcomes.iter().any(|w| w.reconnects >= 1),
        "at least one worker rode through the restart: {worker_outcomes:?}"
    );

    let bytes = std::fs::read(&path).unwrap();
    clean(&path);
    assert_eq!(
        bytes,
        local_bytes(&spec, "restart-local"),
        "a coordinator crash + resume must not perturb the final bytes"
    );
}

/// Scenario: the address a worker reconnects to now serves a *different*
/// campaign. The fingerprint in `Welcome` must make the worker abort
/// loudly instead of folding foreign results — and the foreign campaign's
/// store must come out untouched by the confused worker.
#[test]
fn reconnecting_worker_aborts_when_the_campaign_changed_under_it() {
    let spec_a = tiny_spec("dist-fault-swap-a");
    let jobs_a = spec_a.expand().unwrap();
    let path_a = temp_store("swap-a");
    clean(&path_a);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    // Campaign A "crashes" after two deliveries...
    let first = {
        let (name, jobs, path) = (spec_a.name.clone(), jobs_a.clone(), path_a.clone());
        std::thread::spawn(move || {
            serve(
                listener,
                &name,
                &jobs,
                &path,
                &ServeOptions {
                    stop_after_deliveries: Some(2),
                    quiet: true,
                    ..ServeOptions::default()
                },
            )
        })
    };
    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || run_worker(&addr, "loyalist", &worker_opts(), run_job))
    };
    let first_outcome = first.join().unwrap().unwrap();
    assert!(first_outcome.stopped);

    // ...and campaign B (a different grid) takes over the port.
    let mut spec_b = tiny_spec("dist-fault-swap-b");
    spec_b.seeds = Some(vec![7]);
    let jobs_b = spec_b.expand().unwrap();
    let path_b = temp_store("swap-b");
    clean(&path_b);
    let listener = bind_with_retry(&addr);
    let second = {
        let (name, jobs, path) = (spec_b.name.clone(), jobs_b.clone(), path_b.clone());
        std::thread::spawn(move || serve(listener, &name, &jobs, &path, &quiet_serve()))
    };

    // The worker reconnects, sees a foreign fingerprint, and aborts loudly.
    let err = worker.join().unwrap().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    assert!(
        err.to_string().contains("different campaign"),
        "the abort names the mix-up: {err}"
    );

    // Campaign B still drains cleanly with an honest worker, byte-identical
    // to its own local run.
    let finisher = std::thread::spawn(move || run_worker(&addr, "honest", &worker_opts(), run_job));
    let second_outcome = second.join().unwrap().unwrap();
    finisher.join().unwrap().unwrap();
    assert!(second_outcome.is_complete(), "{second_outcome:?}");
    let bytes_b = std::fs::read(&path_b).unwrap();
    clean(&path_a);
    clean(&path_b);
    assert_eq!(
        bytes_b,
        local_bytes(&spec_b, "swap-b-local"),
        "the foreign worker's abort left campaign B's bytes clean"
    );
}
