//! End-to-end fault-free simulations across every mechanism and traffic
//! pattern (the integration-level counterpart of Figures 4 and 5).

use hyperx_routing::MechanismSpec;
use surepath_core::{Experiment, TrafficSpec};

fn quick_2d(mechanism: MechanismSpec, traffic: TrafficSpec) -> Experiment {
    let mut e = Experiment::quick_2d(mechanism, traffic);
    e.sim.warmup_cycles = 400;
    e.sim.measure_cycles = 1200;
    e.sim.seed = 11;
    e
}

fn quick_3d(mechanism: MechanismSpec, traffic: TrafficSpec) -> Experiment {
    let mut e = Experiment::quick_3d(mechanism, traffic);
    e.sim.warmup_cycles = 400;
    e.sim.measure_cycles = 1200;
    e.sim.seed = 11;
    e
}

#[test]
fn every_mechanism_delivers_uniform_traffic_2d() {
    for mechanism in MechanismSpec::fault_free_lineup() {
        let m = quick_2d(mechanism, TrafficSpec::Uniform).run_rate(0.3);
        assert!(
            !m.stalled,
            "{mechanism} stalled under light uniform traffic"
        );
        assert!(
            m.accepted_load > 0.2,
            "{mechanism} accepted only {:.3} of an offered 0.3",
            m.accepted_load
        );
        assert!(
            m.average_latency > 30.0,
            "{mechanism} latency impossibly low"
        );
        assert!(
            m.jain_generated > 0.9,
            "{mechanism} starves some servers at light load"
        );
    }
}

#[test]
fn every_mechanism_delivers_uniform_traffic_3d() {
    for mechanism in MechanismSpec::fault_free_lineup() {
        let m = quick_3d(mechanism, TrafficSpec::Uniform).run_rate(0.3);
        assert!(!m.stalled, "{mechanism} stalled");
        assert!(
            m.accepted_load > 0.2,
            "{mechanism} accepted only {:.3}",
            m.accepted_load
        );
    }
}

#[test]
fn every_pattern_works_with_surepath_3d() {
    for traffic in TrafficSpec::lineup_3d() {
        for mechanism in MechanismSpec::surepath_lineup() {
            let m = quick_3d(mechanism, traffic).run_rate(0.25);
            assert!(!m.stalled, "{mechanism} stalled under {}", traffic.name());
            assert!(
                m.accepted_load > 0.15,
                "{mechanism} under {} accepted only {:.3}",
                traffic.name(),
                m.accepted_load
            );
        }
    }
}

#[test]
fn valiant_saturates_around_half_under_uniform() {
    // Valiant doubles path length, so it cannot accept much more than 0.5
    // phits/cycle/server under uniform traffic while adaptive mechanisms go higher.
    let valiant = quick_2d(MechanismSpec::Valiant, TrafficSpec::Uniform).run_rate(1.0);
    let polsp = quick_2d(MechanismSpec::PolSP, TrafficSpec::Uniform).run_rate(1.0);
    assert!(
        valiant.accepted_load < 0.65,
        "Valiant accepted {:.3}, above its theoretical ceiling",
        valiant.accepted_load
    );
    assert!(
        polsp.accepted_load > valiant.accepted_load,
        "PolSP ({:.3}) should beat Valiant ({:.3}) under benign traffic",
        polsp.accepted_load,
        valiant.accepted_load
    );
}

#[test]
fn surepath_matches_or_beats_ladder_counterparts_under_uniform() {
    // Paper §5: OmniSP/PolSP provide the same or better throughput than
    // OmniWAR/Polarized with the same resources.
    let omniwar = quick_3d(MechanismSpec::OmniWAR, TrafficSpec::Uniform).run_rate(0.9);
    let omnisp = quick_3d(MechanismSpec::OmniSP, TrafficSpec::Uniform).run_rate(0.9);
    assert!(
        omnisp.accepted_load >= omniwar.accepted_load - 0.08,
        "OmniSP ({:.3}) collapsed versus OmniWAR ({:.3})",
        omnisp.accepted_load,
        omniwar.accepted_load
    );
    let polarized = quick_3d(MechanismSpec::Polarized, TrafficSpec::Uniform).run_rate(0.9);
    let polsp = quick_3d(MechanismSpec::PolSP, TrafficSpec::Uniform).run_rate(0.9);
    assert!(
        polsp.accepted_load >= polarized.accepted_load - 0.08,
        "PolSP ({:.3}) collapsed versus Polarized ({:.3})",
        polsp.accepted_load,
        polarized.accepted_load
    );
}

#[test]
fn rpn_separates_omnidimensional_from_polarized_routes() {
    // The paper's headline claim for its new pattern: mechanisms based on
    // Omnidimensional routes are capped near 0.5 while Polarized-route
    // mechanisms exceed them.
    let omnisp = quick_3d(
        MechanismSpec::OmniSP,
        TrafficSpec::RegularPermutationToNeighbour,
    )
    .run_rate(1.0);
    let polsp = quick_3d(
        MechanismSpec::PolSP,
        TrafficSpec::RegularPermutationToNeighbour,
    )
    .run_rate(1.0);
    assert!(
        omnisp.accepted_load < 0.62,
        "OmniSP accepted {:.3} under RPN, above the row bound",
        omnisp.accepted_load
    );
    assert!(
        polsp.accepted_load > omnisp.accepted_load,
        "PolSP ({:.3}) should beat OmniSP ({:.3}) under RPN",
        polsp.accepted_load,
        omnisp.accepted_load
    );
}

#[test]
fn minimal_routing_struggles_under_rpn() {
    // Minimal routing only has the single direct link per pair: it saturates
    // early under Regular Permutation to Neighbour.
    let minimal = quick_3d(
        MechanismSpec::Minimal,
        TrafficSpec::RegularPermutationToNeighbour,
    )
    .run_rate(1.0);
    let polsp = quick_3d(
        MechanismSpec::PolSP,
        TrafficSpec::RegularPermutationToNeighbour,
    )
    .run_rate(1.0);
    assert!(
        minimal.accepted_load < polsp.accepted_load,
        "Minimal ({:.3}) should not beat PolSP ({:.3}) under RPN",
        minimal.accepted_load,
        polsp.accepted_load
    );
}

#[test]
fn latency_grows_with_load() {
    let low = quick_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform).run_rate(0.2);
    let high = quick_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform).run_rate(0.95);
    assert!(
        high.average_latency > low.average_latency,
        "latency at load 0.95 ({:.1}) should exceed latency at 0.2 ({:.1})",
        high.average_latency,
        low.average_latency
    );
}

#[test]
fn packet_conservation_for_every_mechanism() {
    for mechanism in MechanismSpec::fault_free_lineup() {
        let mut e = quick_2d(mechanism, TrafficSpec::Uniform);
        e.sim.warmup_cycles = 0;
        e.sim.measure_cycles = 400;
        let mut sim = e.build_simulator();
        sim.run_rate(0.4);
        let generated = sim.total_generated();
        assert!(generated > 0);
        assert!(
            sim.drain(300_000),
            "{mechanism} failed to drain its in-flight packets"
        );
        assert_eq!(sim.total_delivered(), generated, "{mechanism} lost packets");
        assert_eq!(sim.packets_in_switches(), 0);
    }
}
