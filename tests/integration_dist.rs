//! End-to-end tests of the distributed campaign driver against the *real*
//! simulator: the spawn-local smoke (1/2/4 workers over loopback TCP must
//! produce a store byte-identical to a plain local run) and worker loss
//! mid-campaign (dropped leases re-offer; the final bytes still match).
//!
//! The dist crate's own tests cover the protocol and scheduling machinery
//! with a fake workload; these runs push actual cycle-level simulations
//! through the wire, so result-JSON round-tripping (floats included) is
//! part of what byte-equality verifies.

use std::net::TcpListener;
use std::path::PathBuf;
use surepath::core::{run_campaign, run_job, CampaignSpec, TopologySpec};
use surepath::dist::{
    read_message, run_worker, serve, write_message, Reply, Request, ServeOptions, WorkerOptions,
};
use surepath::runner::manifest_path;

mod common;
use common::test_threads;

fn tiny_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        topologies: vec![TopologySpec {
            sides: vec![4, 4],
            concentration: None,
        }],
        mechanisms: Some(vec!["omnisp".into(), "polsp".into()]),
        traffics: Some(vec!["uniform".into()]),
        scenarios: Some(vec!["none".into(), "random:6:5".into()]),
        loads: Some(vec![0.3]),
        seeds: Some(vec![1, 2]),
        vcs: Some(4),
        warmup: Some(100),
        measure: Some(250),
        ..CampaignSpec::default()
    }
}

fn temp_store(name: &str) -> PathBuf {
    common::temp_store("surepath-integration-dist", name)
}

fn clean(path: &std::path::Path) {
    for suffix in ["jsonl", "manifest.jsonl", "timings.jsonl"] {
        let _ = std::fs::remove_file(path.with_extension(suffix));
    }
}

/// A local single-process run of the same spec: the byte ground truth.
fn local_bytes(spec: &CampaignSpec, name: &str) -> Vec<u8> {
    let path = temp_store(name);
    clean(&path);
    run_campaign(spec, &path, Some(test_threads()), true).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    clean(&path);
    bytes
}

/// Serves `spec` over loopback TCP with `workers` in-process workers, all
/// running the real simulation bridge.
fn distributed_bytes(spec: &CampaignSpec, name: &str, workers: usize) -> Vec<u8> {
    let path = temp_store(name);
    clean(&path);
    let jobs = spec.expand().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handles: Vec<_> = (0..workers)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(
                    &addr,
                    &format!("int-worker-{i}"),
                    &WorkerOptions {
                        threads: Some(2),
                        ..WorkerOptions::default()
                    },
                    run_job,
                )
            })
        })
        .collect();
    let outcome = serve(
        listener,
        &spec.name,
        &jobs,
        &path,
        &ServeOptions {
            quiet: true,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    for handle in handles {
        handle.join().unwrap().unwrap();
    }
    assert!(outcome.is_complete(), "{outcome:?}");
    assert_eq!(outcome.workers, workers);
    let bytes = std::fs::read(&path).unwrap();
    // The manifest sidecar exists and covers the executed grid.
    let manifest = surepath::runner::ShardManifest::open_read_only(&manifest_path(&path)).unwrap();
    assert_eq!(manifest.len(), outcome.executed);
    clean(&path);
    bytes
}

#[test]
fn spawn_local_smoke_one_two_four_workers_match_the_local_store() {
    let spec = tiny_spec("dist-int-smoke");
    let local = local_bytes(&spec, "smoke-local");
    assert!(!local.is_empty());
    for workers in [1usize, 2, 4] {
        assert_eq!(
            distributed_bytes(&spec, &format!("smoke-{workers}w"), workers),
            local,
            "{workers} real-simulation TCP workers must reproduce the local bytes"
        );
    }
}

#[test]
fn killed_worker_mid_campaign_still_yields_identical_bytes() {
    let spec = tiny_spec("dist-int-kill");
    let jobs = spec.expand().unwrap();
    let path = temp_store("kill");
    clean(&path);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = {
        let (name, jobs, path) = (spec.name.clone(), jobs.clone(), path.clone());
        std::thread::spawn(move || {
            serve(
                listener,
                &name,
                &jobs,
                &path,
                &ServeOptions {
                    quiet: true,
                    ..ServeOptions::default()
                },
            )
        })
    };

    // The victim: hello, fetch a batch, die without delivering.
    let taken = {
        let stream = std::net::TcpStream::connect(&addr).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_message(
            &mut writer,
            &Request::Hello {
                worker: "victim".into(),
                session: None,
            },
        )
        .unwrap();
        let _: Reply = read_message(&mut reader).unwrap().unwrap();
        write_message(&mut writer, &Request::Fetch { max: 4 }).unwrap();
        match read_message::<Reply>(&mut reader).unwrap().unwrap() {
            Reply::Assign { jobs } => jobs.len(),
            other => panic!("expected an assignment, got {other:?}"),
        }
    }; // both socket halves drop here: the kill
    assert!(taken > 0);

    let survivor = std::thread::spawn(move || {
        run_worker(
            &addr,
            "survivor",
            &WorkerOptions {
                threads: Some(2),
                ..WorkerOptions::default()
            },
            run_job,
        )
    });
    let outcome = server.join().unwrap().unwrap();
    survivor.join().unwrap().unwrap();
    assert!(outcome.is_complete());
    assert!(outcome.reoffered >= taken);
    let bytes = std::fs::read(&path).unwrap();
    clean(&path);
    assert_eq!(
        bytes,
        local_bytes(&spec, "kill-local"),
        "a worker killed mid-campaign must not perturb the final bytes"
    );
}

#[test]
fn metrics_endpoint_serves_live_fleet_state_without_perturbing_bytes() {
    let spec = tiny_spec("dist-int-metrics");
    let jobs = spec.expand().unwrap();
    let path = temp_store("metrics");
    clean(&path);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    // Reserve a port for the metrics endpoint (bind-then-drop: the tiny
    // reuse window is harmless on loopback in a test).
    let metrics_addr = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };
    let server = {
        let (name, jobs, path, metrics_addr) = (
            spec.name.clone(),
            jobs.clone(),
            path.clone(),
            metrics_addr.clone(),
        );
        std::thread::spawn(move || {
            serve(
                listener,
                &name,
                &jobs,
                &path,
                &ServeOptions {
                    quiet: true,
                    metrics_addr: Some(metrics_addr),
                    ..ServeOptions::default()
                },
            )
        })
    };

    // Scrape before any worker joins: the whole grid is pending.
    let scrape = || -> String {
        use std::io::{Read as _, Write as _};
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            match std::net::TcpStream::connect(&metrics_addr) {
                Ok(mut stream) => {
                    let _ = stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                    let mut body = String::new();
                    stream.read_to_string(&mut body).unwrap();
                    return body;
                }
                Err(e) if std::time::Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                Err(e) => panic!("metrics endpoint never came up: {e}"),
            }
        }
    };
    let before = scrape();
    assert!(before.starts_with("HTTP/1.0 200 OK"), "{before}");
    assert!(before.contains("surepath_jobs_delivered 0"), "{before}");
    assert!(
        before.contains(&format!("surepath_jobs_total {}", jobs.len())),
        "{before}"
    );
    assert!(before.contains("surepath_workers_live 0"), "{before}");
    assert!(
        before.contains("surepath_jobs_pending{shard=\"0\"}"),
        "{before}"
    );
    assert!(
        before.contains("surepath_lease_reclaims_total 0"),
        "{before}"
    );

    let worker = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            run_worker(
                &addr,
                "metrics-worker",
                &WorkerOptions {
                    threads: Some(2),
                    ..WorkerOptions::default()
                },
                run_job,
            )
        })
    };
    let outcome = server.join().unwrap().unwrap();
    worker.join().unwrap().unwrap();
    assert!(outcome.is_complete());
    let bytes = std::fs::read(&path).unwrap();
    clean(&path);
    assert_eq!(
        bytes,
        local_bytes(&spec, "metrics-local"),
        "a scraped campaign must still produce the local bytes"
    );
}
