//! End-to-end tests of the campaign subsystem against the *real* simulator:
//! determinism (byte-identical stores), resume after interruption, and
//! panic isolation — the contract the `surepath campaign` subcommand and
//! the ported figure binaries rely on.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use surepath::core::{run_campaign, run_job, CampaignSpec, ResultStore, TopologySpec};
use surepath::runner::{self, job_fingerprint};

fn tiny_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        topologies: vec![TopologySpec {
            sides: vec![4, 4],
            concentration: None,
        }],
        mechanisms: Some(vec!["omnisp".into(), "polsp".into()]),
        traffics: Some(vec!["uniform".into()]),
        scenarios: Some(vec!["none".into(), "random:6:5".into()]),
        loads: Some(vec![0.3]),
        seeds: Some(vec![1, 2]),
        vcs: Some(4),
        warmup: Some(100),
        measure: Some(250),
        ..CampaignSpec::default()
    }
}

/// A tiny closed-loop (completion-time) campaign: the batch analogue of
/// [`tiny_spec`], exercising the `kind = "batch"` core bridge.
fn tiny_batch_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        kind: Some("batch".into()),
        topologies: vec![TopologySpec {
            sides: vec![4, 4],
            concentration: None,
        }],
        mechanisms: Some(vec!["omnisp".into(), "polsp".into()]),
        traffics: Some(vec!["uniform".into()]),
        scenarios: Some(vec!["none".into(), "random:6:5".into()]),
        seeds: Some(vec![1, 2]),
        vcs: Some(4),
        packets_per_server: Some(15),
        sample_window: Some(300),
        ..CampaignSpec::default()
    }
}

mod common;
use common::test_threads;

fn temp_store(name: &str) -> PathBuf {
    common::temp_store("surepath-integration-campaign", name)
}

#[test]
fn same_spec_same_seed_gives_byte_identical_stores() {
    let spec = tiny_spec("bytes");
    let path_serial = temp_store("bytes-serial");
    let path_parallel = temp_store("bytes-parallel");
    let _ = std::fs::remove_file(&path_serial);
    let _ = std::fs::remove_file(&path_parallel);

    // One worker vs. many: completion order differs wildly, bytes must not.
    let a = run_campaign(&spec, &path_serial, Some(1), true).unwrap();
    let b = run_campaign(&spec, &path_parallel, Some(test_threads()), true).unwrap();
    assert_eq!(a.executed, 8);
    assert_eq!(b.executed, 8);
    assert_eq!(a.failed + b.failed, 0);

    let serial = std::fs::read(&path_serial).unwrap();
    let parallel = std::fs::read(&path_parallel).unwrap();
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "real-simulation campaign stores must be byte-identical across schedules"
    );
    let _ = std::fs::remove_file(&path_serial);
    let _ = std::fs::remove_file(&path_parallel);
}

#[test]
fn interrupted_campaign_resumes_running_only_missing_jobs() {
    let spec = tiny_spec("resume");
    let jobs = spec.expand().unwrap();
    let path = temp_store("resume");
    let _ = std::fs::remove_file(&path);

    // Simulate an interruption: pre-complete 3 of the 8 jobs by running them
    // through the same bridge the campaign uses.
    {
        let mut store = ResultStore::open(&path).unwrap();
        for job in jobs.iter().take(3) {
            store.append_ok(job, run_job(job).unwrap()).unwrap();
        }
    }

    let executed = AtomicUsize::new(0);
    let outcome = runner::run_campaign(&spec, &path, Some(test_threads()), true, |job| {
        executed.fetch_add(1, Ordering::Relaxed);
        run_job(job)
    })
    .unwrap();
    assert_eq!(outcome.total, 8);
    assert_eq!(outcome.skipped, 3);
    assert_eq!(outcome.executed, 5);
    assert_eq!(
        executed.load(Ordering::Relaxed),
        5,
        "only the missing jobs ran"
    );
    assert!(outcome.is_complete());

    // And a third run touches nothing at all.
    let untouched = run_campaign(&spec, &path, Some(test_threads()), true).unwrap();
    assert_eq!(untouched.skipped, 8);
    assert_eq!(untouched.executed, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_panicking_job_is_isolated_and_the_campaign_completes() {
    let spec = tiny_spec("panic");
    let jobs = spec.expand().unwrap();
    let poisoned = job_fingerprint(&jobs[3]);
    let path = temp_store("panic");
    let _ = std::fs::remove_file(&path);

    let outcome = runner::run_campaign(&spec, &path, Some(test_threads()), true, |job| {
        if job_fingerprint(job) == poisoned {
            panic!("injected fault in job 3");
        }
        run_job(job)
    })
    .unwrap();
    assert_eq!(outcome.executed, 8, "every job was attempted");
    assert_eq!(outcome.failed, 1, "only the poisoned job failed");

    // The failure is on disk with its message, and a clean re-run heals it.
    let store = ResultStore::open(&path).unwrap();
    let record = store.record(&poisoned).unwrap();
    assert_eq!(record.status, "failed");
    assert!(record.error.as_deref().unwrap().contains("injected fault"));

    let healed = run_campaign(&spec, &path, Some(2), true).unwrap();
    assert_eq!(healed.skipped, 7);
    assert_eq!(healed.executed, 1);
    assert!(healed.is_complete());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn batch_campaign_stores_are_byte_identical_across_thread_counts() {
    let spec = tiny_batch_spec("batch-bytes");
    let path_serial = temp_store("batch-bytes-serial");
    let path_parallel = temp_store("batch-bytes-parallel");
    let _ = std::fs::remove_file(&path_serial);
    let _ = std::fs::remove_file(&path_parallel);

    let a = run_campaign(&spec, &path_serial, Some(1), true).unwrap();
    let b = run_campaign(&spec, &path_parallel, Some(test_threads()), true).unwrap();
    assert_eq!(a.executed, 8);
    assert_eq!(a.failed + b.failed, 0);

    let serial = std::fs::read(&path_serial).unwrap();
    let parallel = std::fs::read(&path_parallel).unwrap();
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "batch campaign stores must be byte-identical across schedules"
    );
    // The stored payloads are full BatchMetrics: completion time, the
    // throughput-over-time samples and the stalled flag.
    let store = ResultStore::open(&path_serial).unwrap();
    for record in store.records() {
        let result = record.result.as_ref().expect("ok record");
        assert!(result["completion_time"].as_u64().unwrap() > 0);
        assert!(!result["samples"].as_array().unwrap().is_empty());
        assert_eq!(result["stalled"].as_bool(), Some(false));
    }
    let _ = std::fs::remove_file(&path_serial);
    let _ = std::fs::remove_file(&path_parallel);
}

#[test]
fn interrupted_batch_campaign_resumes_running_only_missing_jobs() {
    let spec = tiny_batch_spec("batch-resume");
    let jobs = spec.expand().unwrap();
    let path = temp_store("batch-resume");
    let _ = std::fs::remove_file(&path);

    // Simulate an interruption: pre-complete 3 of the 8 batch jobs through
    // the same bridge the campaign uses.
    {
        let mut store = ResultStore::open(&path).unwrap();
        for job in jobs.iter().take(3) {
            store.append_ok(job, run_job(job).unwrap()).unwrap();
        }
    }

    let executed = AtomicUsize::new(0);
    let outcome = runner::run_campaign(&spec, &path, Some(test_threads()), true, |job| {
        executed.fetch_add(1, Ordering::Relaxed);
        run_job(job)
    })
    .unwrap();
    assert_eq!(outcome.total, 8);
    assert_eq!(outcome.skipped, 3);
    assert_eq!(outcome.executed, 5);
    assert_eq!(
        executed.load(Ordering::Relaxed),
        5,
        "only the missing batch jobs ran"
    );
    assert!(outcome.is_complete());

    // And a third run touches nothing at all.
    let untouched = run_campaign(&spec, &path, Some(test_threads()), true).unwrap();
    assert_eq!(untouched.skipped, 8);
    assert_eq!(untouched.executed, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn campaign_results_match_direct_experiment_runs() {
    // The runner must not change the physics: a campaign cell equals the
    // same experiment run directly through the core API.
    let spec = tiny_spec("cross-check");
    let jobs = spec.expand().unwrap();
    let path = temp_store("cross-check");
    let _ = std::fs::remove_file(&path);
    run_campaign(&spec, &path, None, true).unwrap();

    let store = ResultStore::open(&path).unwrap();
    let job = &jobs[5];
    let stored = store.record(&job_fingerprint(job)).unwrap();
    let direct = run_job(job).unwrap();
    assert_eq!(
        serde_json::to_string(stored.result.as_ref().unwrap()).unwrap(),
        serde_json::to_string(&direct).unwrap()
    );
    let accepted = direct["accepted_load"].as_f64().unwrap();
    assert!(accepted > 0.05, "tiny 4x4 run accepted {accepted}");
    let _ = std::fs::remove_file(&path);
}
