//! Mechanism-level integration tests: walking packets through the candidate
//! graph across crates (topology + routing) without the full simulator, and
//! checking the structural claims of Table 4.

use hyperx_routing::{Candidate, MechanismSpec, NetworkView, RoutingMechanism};
use hyperx_topology::{FaultSet, HyperX};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Walks a packet from `src` to `dst` greedily following the lowest-penalty
/// candidate (ties towards the destination). Returns the hop count, or `None`
/// if the mechanism got stuck.
fn walk(
    mechanism: &dyn RoutingMechanism,
    view: &NetworkView,
    src: usize,
    dst: usize,
    rng: &mut ChaCha8Rng,
    max_hops: usize,
) -> Option<usize> {
    let mut state = mechanism.init_packet(src, dst, rng);
    let mut current = src;
    let mut hops = 0usize;
    while current != dst {
        if hops > max_hops {
            return None;
        }
        let mut cands: Vec<Candidate> = Vec::new();
        mechanism.candidates(&state, current, &mut cands);
        if cands.is_empty() {
            return None;
        }
        let best = cands
            .iter()
            .min_by_key(|c| {
                let nb = view.network().neighbor(current, c.port).unwrap().switch;
                (c.penalty, view.distance(nb, dst), c.port)
            })
            .unwrap();
        let next = view.network().neighbor(current, best.port).unwrap().switch;
        mechanism.note_hop(&mut state, current, next, best);
        current = next;
        hops += 1;
    }
    Some(hops)
}

#[test]
fn every_mechanism_routes_every_pair_in_a_healthy_network() {
    let view = Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 0));
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for spec in MechanismSpec::fault_free_lineup() {
        let mechanism = spec.build_default(view.clone());
        for src in 0..view.hyperx().num_switches() {
            for dst in 0..view.hyperx().num_switches() {
                if src == dst {
                    continue;
                }
                let hops = walk(mechanism.as_ref(), &view, src, dst, &mut rng, 32);
                assert!(
                    hops.is_some(),
                    "{spec} got stuck routing {src} -> {dst} in a healthy network"
                );
            }
        }
    }
}

#[test]
fn surepath_routes_every_pair_under_heavy_faults_where_ladders_fail() {
    // Remove enough links that routes get longer than the Ladder supports;
    // SurePath must still deliver, the Ladder mechanisms may legitimately get stuck.
    let hx = HyperX::regular(2, 4);
    let mut frng = ChaCha8Rng::seed_from_u64(13);
    let faults = FaultSet::random_connected_sequence(hx.network(), 30, &mut frng);
    let view = Arc::new(NetworkView::with_faults(hx, &faults, 0));
    assert!(view.is_connected());
    let mut rng = ChaCha8Rng::seed_from_u64(2);

    for spec in MechanismSpec::surepath_lineup() {
        let mechanism = spec.build(view.clone(), 4);
        for src in 0..view.hyperx().num_switches() {
            for dst in 0..view.hyperx().num_switches() {
                if src == dst {
                    continue;
                }
                let hops = walk(mechanism.as_ref(), &view, src, dst, &mut rng, 64);
                assert!(
                    hops.is_some(),
                    "{spec} got stuck routing {src} -> {dst} under faults"
                );
            }
        }
    }

    // At least one pair breaks for DOR with this many missing links.
    let dor = MechanismSpec::Dor.build(view.clone(), 4);
    let mut dor_stuck = 0usize;
    for src in 0..view.hyperx().num_switches() {
        for dst in 0..view.hyperx().num_switches() {
            if src != dst && walk(dor.as_ref(), &view, src, dst, &mut rng, 64).is_none() {
                dor_stuck += 1;
            }
        }
    }
    assert!(
        dor_stuck > 0,
        "DOR should break for some pairs with 30 faults"
    );
}

#[test]
fn surepath_route_lengths_are_reasonable() {
    // Fault-free SurePath routes should stay within the base algorithm's
    // bound (n + m hops for Omnidimensional, 2·diameter for Polarized) since
    // the escape subnetwork is only a last resort.
    let view = Arc::new(NetworkView::healthy(HyperX::regular(3, 4), 0));
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mechanism = MechanismSpec::OmniSP.build(view.clone(), 6);
    let mut max_hops = 0usize;
    for src in (0..view.hyperx().num_switches()).step_by(7) {
        for dst in (0..view.hyperx().num_switches()).step_by(5) {
            if src == dst {
                continue;
            }
            let hops = walk(mechanism.as_ref(), &view, src, dst, &mut rng, 64).unwrap();
            max_hops = max_hops.max(hops);
        }
    }
    assert!(
        max_hops <= 6,
        "OmniSP used {max_hops} hops for an uncongested walk"
    );
}

#[test]
fn table4_vc_budgets_are_respected() {
    let view2 = Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 0));
    let view3 = Arc::new(NetworkView::healthy(HyperX::regular(3, 4), 0));
    for (dims, view) in [(2usize, view2), (3usize, view3)] {
        for spec in MechanismSpec::fault_free_lineup() {
            let mech = spec.build_default(view.clone());
            assert_eq!(
                mech.num_vcs(),
                2 * dims,
                "{spec} should use 2n VCs in the fair comparison"
            );
            if spec.is_surepath() {
                assert_eq!(mech.escape_vc(), Some(2 * dims - 1));
            } else {
                assert_eq!(mech.escape_vc(), None);
            }
        }
    }
}

#[test]
fn candidate_vcs_never_exceed_the_mechanism_budget() {
    let view = Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 0));
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for spec in MechanismSpec::fault_free_lineup() {
        let mech = spec.build_default(view.clone());
        let budget = mech.num_vcs();
        for src in 0..view.hyperx().num_switches() {
            let state = mech.init_packet(src, (src + 5) % view.hyperx().num_switches(), &mut rng);
            let mut cands = Vec::new();
            mech.candidates(&state, src, &mut cands);
            for c in &cands {
                assert!(
                    c.vcs.hi <= budget,
                    "{spec} offered VC range {:?} beyond its {budget} VCs",
                    c.vcs
                );
            }
        }
    }
}

#[test]
fn escape_candidates_only_appear_for_surepath() {
    let view = Arc::new(NetworkView::healthy(HyperX::regular(2, 4), 0));
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for spec in MechanismSpec::fault_free_lineup() {
        let mech = spec.build_default(view.clone());
        let state = mech.init_packet(0, 15, &mut rng);
        let mut cands = Vec::new();
        mech.candidates(&state, 0, &mut cands);
        let has_escape = cands.iter().any(|c| c.kind.is_escape());
        assert_eq!(
            has_escape,
            spec.is_surepath(),
            "{spec}: escape candidates presence mismatch"
        );
    }
}
