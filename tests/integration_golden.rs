//! Golden-store fixture tests: a tiny finalized JSONL store is checked in
//! under `tests/fixtures/`, and the rendered `--report` (and the `--diff` of
//! the store against itself) must match the committed snapshots **byte for
//! byte**. This pins the exact output format across refactors and platforms
//! — store contents are already byte-deterministic, so any diff here is a
//! rendering change, which should be deliberate and reviewed.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! cargo test --test integration_golden -- --ignored regenerate_golden_fixtures
//! ```

use std::path::PathBuf;
use surepath::core::{
    diff_stores, format_store_diff, report_store, run_campaign, CampaignSpec, ResultStore,
    TopologySpec,
};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn store_path() -> PathBuf {
    fixtures_dir().join("golden_store.jsonl")
}

fn report_path() -> PathBuf {
    fixtures_dir().join("golden_report.txt")
}

fn diff_path() -> PathBuf {
    fixtures_dir().join("golden_diff.txt")
}

fn store_v2_path() -> PathBuf {
    fixtures_dir().join("golden_store_v2.jsonl")
}

fn report_v2_path() -> PathBuf {
    fixtures_dir().join("golden_report_v2.txt")
}

/// The rate campaign of the fixture: two mechanisms, three replicas each.
fn golden_rate_spec() -> CampaignSpec {
    CampaignSpec {
        name: "golden".to_string(),
        topologies: vec![TopologySpec {
            sides: vec![4, 4],
            concentration: None,
        }],
        mechanisms: Some(vec!["omnisp".into(), "polsp".into()]),
        traffics: Some(vec!["uniform".into()]),
        scenarios: Some(vec!["none".into()]),
        loads: Some(vec![0.3]),
        replicas: Some(3),
        vcs: Some(4),
        warmup: Some(100),
        measure: Some(250),
        ..CampaignSpec::default()
    }
}

/// The batch campaign sharing the fixture store: two replicas per point.
fn golden_batch_spec() -> CampaignSpec {
    CampaignSpec {
        name: "golden-batch".to_string(),
        kind: Some("batch".into()),
        loads: None,
        replicas: Some(2),
        packets_per_server: Some(10),
        sample_window: Some(200),
        ..golden_rate_spec()
    }
}

/// The v2 fixture campaign: same grid as the legacy fixture, but recorded
/// *after* latency histograms landed, so every result carries `latency_hist`
/// and the report grows the percentile columns. The legacy `golden_store.jsonl`
/// is deliberately kept pre-histogram — it pins that old stores still render
/// byte-identically.
fn golden_v2_spec() -> CampaignSpec {
    CampaignSpec {
        name: "golden-v2".to_string(),
        ..golden_rate_spec()
    }
}

#[test]
fn golden_report_matches_committed_snapshot_byte_for_byte() {
    let store = ResultStore::open_read_only(&store_path())
        .expect("fixture store is committed under tests/fixtures/");
    let rendered = report_store(&store);
    let golden = std::fs::read_to_string(report_path()).expect("golden report committed");
    assert_eq!(
        rendered, golden,
        "--report output drifted from tests/fixtures/golden_report.txt; if the \
         format change is intentional, regenerate with \
         `cargo test --test integration_golden -- --ignored regenerate_golden_fixtures`"
    );
    // The fixture really is replicated — the snapshot shows mean ± CI.
    assert!(golden.contains('±'), "{golden}");
}

#[test]
fn golden_self_diff_matches_committed_snapshot_and_reports_no_regressions() {
    let store = ResultStore::open_read_only(&store_path()).expect("fixture store committed");
    let diff = diff_stores(&store, &store);
    assert!(!diff.has_regressions());
    assert_eq!(diff.significant(), 0);
    let rendered = format_store_diff(&diff);
    let golden = std::fs::read_to_string(diff_path()).expect("golden diff committed");
    assert_eq!(
        rendered, golden,
        "--diff output drifted from tests/fixtures/golden_diff.txt; regenerate \
         if intentional (see module docs)"
    );
    assert!(golden.contains("result: no regressions"), "{golden}");
}

#[test]
fn golden_v2_report_renders_percentiles_and_matches_snapshot() {
    let store = ResultStore::open_read_only(&store_v2_path())
        .expect("v2 fixture store is committed under tests/fixtures/");
    let rendered = report_store(&store);
    let golden = std::fs::read_to_string(report_v2_path()).expect("v2 golden report committed");
    assert_eq!(
        rendered, golden,
        "--report output drifted from tests/fixtures/golden_report_v2.txt; if the \
         format change is intentional, regenerate with \
         `cargo test --test integration_golden -- --ignored regenerate_golden_v2_fixtures`"
    );
    // The store carries histograms and the report surfaces the tail columns.
    let raw = std::fs::read_to_string(store_v2_path()).unwrap();
    assert!(
        raw.contains("latency_hist"),
        "v2 store must embed histograms"
    );
    for column in ["p50", "p99", "p99.9"] {
        assert!(golden.contains(column), "missing `{column}` in:\n{golden}");
    }
}

#[test]
fn golden_store_reruns_are_fingerprint_complete() {
    // The committed store must be complete for its specs: re-running the
    // campaigns against a copy skips everything (nothing is re-simulated and
    // the bytes do not change).
    let copy =
        std::env::temp_dir().join(format!("surepath-golden-copy-{}.jsonl", std::process::id()));
    std::fs::copy(store_path(), &copy).unwrap();
    for spec in [golden_rate_spec(), golden_batch_spec()] {
        let outcome = run_campaign(&spec, &copy, Some(2), true).unwrap();
        assert_eq!(outcome.executed, 0, "campaign `{}` re-ran jobs", spec.name);
        assert!(outcome.is_complete());
    }
    assert_eq!(
        std::fs::read(store_path()).unwrap(),
        std::fs::read(&copy).unwrap(),
        "re-finalizing a complete store must not change its bytes"
    );
    let _ = std::fs::remove_file(&copy);
}

/// Regenerates the fixture store and snapshots. Run explicitly (`--ignored`)
/// after an intentional format change, then commit the updated files.
#[test]
#[ignore]
fn regenerate_golden_fixtures() {
    std::fs::create_dir_all(fixtures_dir()).unwrap();
    let _ = std::fs::remove_file(store_path());
    for spec in [golden_rate_spec(), golden_batch_spec()] {
        let outcome = run_campaign(&spec, &store_path(), Some(2), true).unwrap();
        assert!(outcome.is_complete(), "campaign `{}` failed", spec.name);
    }
    let store = ResultStore::open_read_only(&store_path()).unwrap();
    std::fs::write(report_path(), report_store(&store)).unwrap();
    std::fs::write(diff_path(), format_store_diff(&diff_stores(&store, &store))).unwrap();
}

/// Regenerates the histogram-era fixture store and report snapshot.
#[test]
#[ignore]
fn regenerate_golden_v2_fixtures() {
    std::fs::create_dir_all(fixtures_dir()).unwrap();
    let _ = std::fs::remove_file(store_v2_path());
    let outcome = run_campaign(&golden_v2_spec(), &store_v2_path(), Some(2), true).unwrap();
    assert!(outcome.is_complete(), "v2 fixture campaign failed");
    let store = ResultStore::open_read_only(&store_v2_path()).unwrap();
    std::fs::write(report_v2_path(), report_store(&store)).unwrap();
}
