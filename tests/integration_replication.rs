//! End-to-end tests of replication-aware campaigns: the `replicas`
//! dimension against the real simulator, mean ± CI rendering in `--report`,
//! and the statistically-grounded `--diff` between stores — including the
//! acceptance contract that a store diffed against itself reports zero
//! regressions while a degraded candidate fails, with byte-identical output
//! whatever the executor thread count was.
//!
//! The worker count honours `SUREPATH_TEST_THREADS` (default 4) so CI can
//! run the whole suite at 1 and at 4 executor threads.

use serde::Value;
use std::path::PathBuf;
use surepath::cli::{run_campaign_command, CampaignCommand};
use surepath::core::{
    diff_stores, format_store_diff, replicated_rate_points, report_store, run_campaign,
    CampaignSpec, ResultStore, TopologySpec,
};
use surepath::runner::StoreRecord;

mod common;
use common::test_threads;

fn replicated_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        topologies: vec![TopologySpec {
            sides: vec![4, 4],
            concentration: None,
        }],
        mechanisms: Some(vec!["omnisp".into(), "polsp".into()]),
        traffics: Some(vec!["uniform".into()]),
        scenarios: Some(vec!["none".into()]),
        loads: Some(vec![0.3]),
        replicas: Some(3),
        vcs: Some(4),
        warmup: Some(100),
        measure: Some(250),
        ..CampaignSpec::default()
    }
}

fn temp_store(name: &str) -> PathBuf {
    common::temp_store("surepath-integration-replication", name)
}

#[test]
fn replicated_campaign_stores_and_reports_are_identical_across_thread_counts() {
    let spec = replicated_spec("replication-bytes");
    let path_serial = temp_store("replication-bytes-serial");
    let path_pool = temp_store("replication-bytes-pool");
    let _ = std::fs::remove_file(&path_serial);
    let _ = std::fs::remove_file(&path_pool);

    let a = run_campaign(&spec, &path_serial, Some(1), true).unwrap();
    let b = run_campaign(&spec, &path_pool, Some(test_threads()), true).unwrap();
    assert_eq!(a.total, 6, "2 mechanisms x 3 replicas");
    assert_eq!(b.executed, 6);
    assert_eq!(a.failed + b.failed, 0);

    let serial = std::fs::read(&path_serial).unwrap();
    let pool = std::fs::read(&path_pool).unwrap();
    assert_eq!(serial, pool, "replicated stores are byte-identical");

    // The rendered report and the self-diff are byte-identical too — the
    // acceptance criterion for deterministic output across schedules.
    let store_serial = ResultStore::open_read_only(&path_serial).unwrap();
    let store_pool = ResultStore::open_read_only(&path_pool).unwrap();
    assert_eq!(report_store(&store_serial), report_store(&store_pool));
    assert_eq!(
        format_store_diff(&diff_stores(&store_serial, &store_pool)),
        format_store_diff(&diff_stores(&store_pool, &store_serial)),
        "diff of identical stores is symmetric and deterministic"
    );
    let _ = std::fs::remove_file(&path_serial);
    let _ = std::fs::remove_file(&path_pool);
}

#[test]
fn replicated_report_prints_mean_and_half_width_per_point() {
    let spec = replicated_spec("replication-report");
    let path = temp_store("replication-report");
    let _ = std::fs::remove_file(&path);
    run_campaign(&spec, &path, Some(test_threads()), true).unwrap();

    let store = ResultStore::open_read_only(&path).unwrap();
    let points = replicated_rate_points(&store, Some("replication-report"));
    assert_eq!(points.len(), 2, "one aggregated point per mechanism");
    for p in &points {
        assert_eq!(p.n, 3, "all three replicas grouped");
        assert!(p.accepted_load.mean > 0.05);
        assert!(
            p.accepted_load.std_dev > 0.0,
            "different seeds give different draws"
        );
        assert!(p.accepted_load.half_width().is_finite());
    }
    let report = report_store(&store);
    assert!(
        report.contains('±'),
        "report shows mean ± half-width: {report}"
    );
    assert!(report.contains("6 ok, 0 failed"), "{report}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn diff_against_itself_is_clean_and_a_degraded_candidate_regresses() {
    let spec = replicated_spec("replication-diff");
    let path = temp_store("replication-diff");
    let degraded_path = temp_store("replication-diff-degraded");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&degraded_path);
    run_campaign(&spec, &path, Some(test_threads()), true).unwrap();

    // Self-diff: no significant differences, no regressions — and the CLI
    // command wrapping it succeeds (exit 0).
    let store = ResultStore::open_read_only(&path).unwrap();
    let self_diff = diff_stores(&store, &store);
    assert_eq!(self_diff.points.len(), 2);
    assert_eq!(self_diff.significant(), 0);
    assert!(!self_diff.has_regressions());
    let cli_ok = run_campaign_command(&CampaignCommand::Diff {
        baseline: path.to_string_lossy().into_owned(),
        candidate: path.to_string_lossy().into_owned(),
        campaign: None,
        csv: None,
    })
    .expect("self-diff must succeed")
    .text;
    assert!(cli_ok.contains("result: no regressions"), "{cli_ok}");

    // A candidate store where one mechanism degraded (the simulated "routing
    // change went wrong"): every polsp replica loses a third of its
    // throughput, far outside the replica CIs.
    {
        let mut degraded = ResultStore::open(&degraded_path).unwrap();
        let mut records: Vec<StoreRecord> = store.records_in_order().cloned().collect();
        for record in &mut records {
            if record.job.mechanism.as_deref() == Some("polsp") {
                let result = record.result.as_mut().unwrap();
                let accepted = result["accepted_load"].as_f64().unwrap();
                if let Value::Object(fields) = result {
                    for (name, v) in fields.iter_mut() {
                        if name.as_str() == "accepted_load" {
                            *v = serde_json::to_value(&(accepted * 0.66)).unwrap();
                        }
                    }
                }
            }
            degraded
                .append_ok(&record.job, record.result.clone().unwrap())
                .unwrap();
        }
    }
    let degraded = ResultStore::open_read_only(&degraded_path).unwrap();
    let diff = diff_stores(&store, &degraded);
    assert!(
        diff.has_regressions(),
        "the degraded mechanism must be flagged"
    );
    assert_eq!(
        diff.regressions(),
        1,
        "only polsp's accepted_load regressed"
    );
    let text = format_store_diff(&diff);
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("accepted_load"), "{text}");

    // The CLI command fails (nonzero exit) on regression, with the table.
    let cli_err = surepath_cli::run_campaign_command(&surepath_cli::CampaignCommand::Diff {
        baseline: path.to_string_lossy().into_owned(),
        candidate: degraded_path.to_string_lossy().into_owned(),
        campaign: None,
        csv: None,
    })
    .expect_err("a regression must fail the diff command");
    assert!(cli_err.contains("REGRESSION"), "{cli_err}");

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&degraded_path);
}

#[test]
fn replicas_resume_and_align_with_legacy_single_seed_stores() {
    // A store written by the old single-seed spec stays valid when the spec
    // switches to `replicas`: the first replica's fingerprint is unchanged,
    // so only the new replicas run.
    let legacy = CampaignSpec {
        replicas: None,
        seeds: Some(vec![1]),
        ..replicated_spec("replication-upgrade")
    };
    let spec = replicated_spec("replication-upgrade");
    let path = temp_store("replication-upgrade");
    let _ = std::fs::remove_file(&path);

    let first = run_campaign(&legacy, &path, Some(test_threads()), true).unwrap();
    assert_eq!(first.total, 2);
    let upgraded = run_campaign(&spec, &path, Some(test_threads()), true).unwrap();
    assert_eq!(upgraded.total, 6);
    assert_eq!(upgraded.skipped, 2, "the legacy seed-1 rows are reused");
    assert_eq!(upgraded.executed, 4);

    // And the legacy rows group into the same points as the new replicas.
    let store = ResultStore::open_read_only(&path).unwrap();
    let points = replicated_rate_points(&store, Some("replication-upgrade"));
    assert_eq!(points.len(), 2);
    assert!(points.iter().all(|p| p.n == 3));
    let _ = std::fs::remove_file(&path);
}
