//! End-to-end tests of the observability layer's zero-perturbation
//! contract against the *real* simulator: a campaign run with packet
//! tracing enabled must produce a result store **byte-identical** to the
//! untraced run — at one thread, at four, and through the distributed
//! coordinator/worker fold — with the lifecycles landing in a sidecar the
//! report layer can render.
//!
//! The sim crate's own tests prove the contract at the engine level (RNG
//! draw order, metrics Debug strings); these runs prove it end to end,
//! where serialization, fingerprinting, store finalization and the
//! counters result field are all part of what byte-equality verifies.

use std::net::TcpListener;
use std::path::PathBuf;
use surepath::core::{
    format_counters_report, format_trace_report, run_campaign, run_campaign_traced, run_job,
    CampaignSpec, ResultStore, TopologySpec,
};
use surepath::dist::{run_worker, serve, ServeOptions, WorkerOptions};
use surepath::runner::{load_trace, trace_path};

mod common;

fn tiny_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        topologies: vec![TopologySpec {
            sides: vec![4, 4],
            concentration: None,
        }],
        mechanisms: Some(vec!["omnisp".into(), "polsp".into()]),
        traffics: Some(vec!["uniform".into()]),
        scenarios: Some(vec!["none".into(), "random:6:5".into()]),
        loads: Some(vec![0.3]),
        seeds: Some(vec![1, 2]),
        vcs: Some(4),
        warmup: Some(100),
        measure: Some(250),
        ..CampaignSpec::default()
    }
}

fn temp_store(name: &str) -> PathBuf {
    common::temp_store("surepath-integration-obs", name)
}

fn clean(path: &std::path::Path) {
    for suffix in ["jsonl", "manifest.jsonl", "timings.jsonl", "trace.jsonl"] {
        let _ = std::fs::remove_file(path.with_extension(suffix));
    }
}

#[test]
fn traced_stores_match_untraced_stores_at_one_and_four_threads() {
    let spec = tiny_spec("obs-int-threads");
    let mut baseline: Option<Vec<u8>> = None;
    for threads in [1usize, 4] {
        let plain_path = temp_store(&format!("plain-{threads}"));
        let traced_path = temp_store(&format!("traced-{threads}"));
        clean(&plain_path);
        clean(&traced_path);
        run_campaign(&spec, &plain_path, Some(threads), true).unwrap();
        run_campaign_traced(&spec, &traced_path, Some(threads), true).unwrap();
        let plain = std::fs::read(&plain_path).unwrap();
        let traced = std::fs::read(&traced_path).unwrap();
        assert_eq!(
            plain, traced,
            "tracing must not change the store bytes at {threads} thread(s)"
        );
        // The store is also stable across thread counts — tracing at any
        // parallelism reproduces the single-thread bytes.
        match &baseline {
            Some(bytes) => assert_eq!(bytes, &traced, "threads={threads}"),
            None => baseline = Some(traced),
        }
        // The lifecycles land in the sidecar, not the store.
        let records = load_trace(&trace_path(&traced_path)).unwrap();
        assert!(!records.is_empty(), "trace sidecar has events");
        assert!(records.iter().any(|r| r.event == "inject"));
        assert!(records.iter().any(|r| r.event == "deliver"));
        clean(&plain_path);
        clean(&traced_path);
    }
}

#[test]
fn distributed_fold_reproduces_the_traced_local_store() {
    // The composition of both contracts: a 3-worker distributed fold (no
    // tracing) and a traced local run must agree byte for byte, because
    // neither distribution nor tracing may perturb results — counters
    // included, since they ride inside the result records.
    let spec = tiny_spec("obs-int-dist");
    let local_path = temp_store("dist-local-traced");
    clean(&local_path);
    run_campaign_traced(&spec, &local_path, Some(2), true).unwrap();
    let local = std::fs::read(&local_path).unwrap();

    let dist_path = temp_store("dist-folded");
    clean(&dist_path);
    let jobs = spec.expand().unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                run_worker(
                    &addr,
                    &format!("obs-worker-{i}"),
                    &WorkerOptions {
                        threads: Some(2),
                        quiet: true,
                        ..WorkerOptions::default()
                    },
                    run_job,
                )
            })
        })
        .collect();
    let outcome = serve(
        listener,
        &spec.name,
        &jobs,
        &dist_path,
        &ServeOptions {
            quiet: true,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    for handle in handles {
        handle.join().unwrap().unwrap();
    }
    assert!(outcome.is_complete(), "{outcome:?}");
    assert_eq!(
        std::fs::read(&dist_path).unwrap(),
        local,
        "3-worker distributed fold must reproduce the traced local bytes"
    );
    clean(&local_path);
    clean(&dist_path);
}

#[test]
fn trace_sidecar_renders_and_counters_report_merges() {
    let spec = tiny_spec("obs-int-render");
    let store_path = temp_store("render");
    clean(&store_path);
    run_campaign_traced(&spec, &store_path, Some(2), true).unwrap();

    let store = ResultStore::open_read_only(&store_path).unwrap();
    let records = load_trace(&trace_path(&store_path)).unwrap();
    let rendered = format_trace_report(&records, Some(&store));
    assert!(rendered.contains("=== trace: job"), "{rendered}");
    assert!(rendered.contains("packet(s) injected"), "{rendered}");
    assert!(rendered.contains("avg latency"), "{rendered}");
    assert!(rendered.contains("escape usage:"), "{rendered}");
    // Labels resolve through the store, not raw fingerprints.
    assert!(
        rendered.contains("=== trace: job `4x4 / polsp"),
        "{rendered}"
    );
    assert!(!rendered.contains("fp "), "{rendered}");

    let counters = format_counters_report(&store);
    assert!(counters.contains("=== counters:"), "{counters}");
    assert!(counters.contains("alloc_requests"), "{counters}");
    assert!(counters.contains("OmniSP"), "{counters}");
    assert!(counters.contains("PolSP"), "{counters}");
    clean(&store_path);
}
