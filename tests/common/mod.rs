//! Helpers shared by the repo-level integration suites.

/// The executor thread count under test: `SUREPATH_TEST_THREADS` (CI runs
/// the suites at 1 and 4 to cover both schedules), default 4.
pub fn test_threads() -> usize {
    std::env::var("SUREPATH_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// A per-suite temp-store path, namespaced by thread count and pid so the
/// 1-thread and 4-thread CI runs (and parallel invocations) never collide.
pub fn temp_store(suite: &str, name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(suite);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{name}-t{}-{}.jsonl",
        test_threads(),
        std::process::id()
    ))
}
