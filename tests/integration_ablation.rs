//! Cross-crate integration tests of the extension features: DAL baseline,
//! escape-policy ablation, root placement, VC budgets and multi-seed
//! replication. These run short end-to-end simulations on the scaled-down
//! networks; they check directions and invariants, not absolute numbers.

use hyperx_routing::MechanismSpec;
use hyperx_topology::{FaultShape, RootPolicy};
use surepath_core::{
    replicate, vc_count_study, Experiment, FaultScenario, RootPlacement, TrafficSpec,
};

fn quick_2d(mechanism: MechanismSpec, traffic: TrafficSpec) -> Experiment {
    let mut e = Experiment::quick_2d(mechanism, traffic);
    e.sim.warmup_cycles = 300;
    e.sim.measure_cycles = 900;
    e
}

fn quick_3d(mechanism: MechanismSpec, traffic: TrafficSpec) -> Experiment {
    let mut e = Experiment::quick_3d(mechanism, traffic);
    e.sim.warmup_cycles = 300;
    e.sim.measure_cycles = 900;
    e
}

fn star_quick_3d() -> FaultScenario {
    FaultScenario::Shape(FaultShape::Cross {
        center: vec![2, 2, 2],
        margin: 1,
    })
}

#[test]
fn dal_baseline_runs_on_the_healthy_network() {
    let m = quick_2d(MechanismSpec::Dal, TrafficSpec::Uniform).run_rate(0.4);
    assert!(!m.stalled, "DAL must not stall on a healthy network");
    assert!(m.accepted_load > 0.3, "accepted {}", m.accepted_load);
    // DAL routes are at most 2n hops.
    assert!(m.average_hops <= 4.0 + 1e-9);
}

#[test]
fn surepath_survives_faults_that_constrain_dal_routes() {
    // A Cross through the escape root: SurePath keeps delivering (its defining
    // property); DAL has no escape subnetwork, so it is only required not to
    // beat SurePath here — if it stalls that is the paper's point.
    let scenario = FaultScenario::Shape(FaultShape::Cross {
        center: vec![4, 4],
        margin: 2,
    });
    let sure = quick_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform)
        .with_scenario(scenario.clone())
        .with_num_vcs(4)
        .run_rate(0.5);
    assert!(
        !sure.stalled,
        "OmniSP must keep working under the Cross faults"
    );
    assert!(sure.accepted_load > 0.25, "accepted {}", sure.accepted_load);

    let dal = quick_2d(MechanismSpec::Dal, TrafficSpec::Uniform)
        .with_scenario(scenario)
        .run_rate(0.5);
    if !dal.stalled {
        assert!(
            dal.accepted_load <= sure.accepted_load * 1.15,
            "DAL ({}) should not meaningfully outperform OmniSP ({}) under faults",
            dal.accepted_load,
            sure.accepted_load
        );
    }
}

#[test]
fn tree_only_escape_still_delivers_but_does_not_beat_opportunistic() {
    let scenario = FaultScenario::Shape(FaultShape::Cross {
        center: vec![4, 4],
        margin: 2,
    });
    let load = 0.8;
    let full = quick_2d(MechanismSpec::PolSP, TrafficSpec::Uniform)
        .with_scenario(scenario.clone())
        .with_num_vcs(4)
        .run_rate(load);
    let tree = quick_2d(MechanismSpec::PolSPTree, TrafficSpec::Uniform)
        .with_scenario(scenario)
        .with_num_vcs(4)
        .run_rate(load);
    assert!(!full.stalled && !tree.stalled);
    assert!(
        tree.accepted_load > 0.2,
        "tree escape accepted {}",
        tree.accepted_load
    );
    // The shortcuts are the contribution: removing them must not help.
    assert!(
        tree.accepted_load <= full.accepted_load + 0.05,
        "tree-only ({}) unexpectedly beats opportunistic ({})",
        tree.accepted_load,
        full.accepted_load
    );
}

#[test]
fn policy_selected_root_matches_or_beats_the_stressful_star_root() {
    let load = 0.8;
    let template = quick_3d(MechanismSpec::PolSP, TrafficSpec::Uniform)
        .with_scenario(star_quick_3d())
        .with_num_vcs(4);
    let stressed = template
        .clone()
        .with_root(RootPlacement::Suggested)
        .run_rate(load);
    let relocated = template
        .with_root(RootPlacement::Policy(RootPolicy::MaxAliveDegree))
        .run_rate(load);
    assert!(!stressed.stalled && !relocated.stalled);
    assert!(
        relocated.accepted_load >= stressed.accepted_load * 0.9,
        "relocated root ({}) much worse than the stressed root ({})",
        relocated.accepted_load,
        stressed.accepted_load
    );
}

#[test]
fn surepath_is_functional_with_only_two_vcs() {
    let points = vc_count_study(
        &quick_3d(MechanismSpec::PolSP, TrafficSpec::Uniform),
        &[2, 6],
        0.6,
    );
    assert_eq!(points.len(), 2);
    let two = &points[0];
    let six = &points[1];
    assert!(
        two.accepted_load > 0.3,
        "2-VC accepted {}",
        two.accepted_load
    );
    // Adding VCs helps at most moderately: the 2-VC configuration must stay
    // within 40% of the 2n-VC one (the paper claims no degradation; we leave
    // slack for the scaled-down network and short windows).
    assert!(
        two.accepted_load >= 0.6 * six.accepted_load,
        "2 VCs ({}) fell far behind 6 VCs ({})",
        two.accepted_load,
        six.accepted_load
    );
}

#[test]
fn replication_across_seeds_is_consistent_for_uniform_traffic() {
    let e = quick_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform);
    let point = replicate(&e, 0.5, &[11, 22, 33]);
    assert_eq!(point.runs.len(), 3);
    assert!(point.accepted_load.mean > 0.35);
    // Uniform traffic at mid load is stable: seed noise stays small.
    assert!(
        point.accepted_load.std_dev < 0.05,
        "std dev {} too large",
        point.accepted_load.std_dev
    );
    assert!(point.jain_generated.mean > 0.9);
    assert!(point.accepted_load.min <= point.accepted_load.mean);
    assert!(point.accepted_load.max >= point.accepted_load.mean);
}

#[test]
fn extension_patterns_run_and_deliver_under_adaptive_routing() {
    // Neighbour shift concentrates each switch's full injection onto a single
    // neighbouring switch, so the direct link saturates quickly and the rest
    // rides non-minimal paths; the point here is stability, not peak load.
    let shift = quick_2d(MechanismSpec::PolSP, TrafficSpec::NeighbourShift).run_rate(0.9);
    assert!(!shift.stalled);
    assert!(
        shift.accepted_load > 0.2,
        "shift accepted {}",
        shift.accepted_load
    );
    let transpose = quick_2d(MechanismSpec::PolSP, TrafficSpec::Transpose).run_rate(0.6);
    assert!(!transpose.stalled);
    assert!(
        transpose.accepted_load > 0.25,
        "transpose accepted {}",
        transpose.accepted_load
    );
}
