//! Scenario- and harness-level integration tests: Figure 1's diameter study,
//! the named fault configurations, load sweeps and report emitters.

use hyperx_routing::MechanismSpec;
use hyperx_topology::{diameter_under_fault_sequence, FaultSet, HyperX};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use surepath_core::{
    format_rate_table, rate_metrics_to_csv, sweep_loads, sweep_mechanisms, Experiment,
    FaultScenario, TrafficSpec,
};

#[test]
fn figure1_diameter_stays_low_for_many_random_faults() {
    // Figure 1 (scaled down): the 4×4×4 HyperX keeps its healthy diameter of 3
    // for a meaningful number of random faults and only disconnects after
    // losing most of its links.
    let hx = HyperX::regular(3, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let total_links = hx.network().num_links();
    let seq = FaultSet::random_sequence(hx.network(), total_links, &mut rng);
    let samples = diameter_under_fault_sequence(hx.network(), &seq, 8);
    assert_eq!(samples[0].diameter, Some(3));
    // The diameter never decreases along the sequence.
    let mut last = 3usize;
    for s in &samples {
        if let Some(d) = s.diameter {
            assert!(d >= last);
            last = d;
        }
    }
    // With 10% of links removed the diameter is still small.
    let early = samples
        .iter()
        .filter(|s| s.faults <= total_links / 10)
        .filter_map(|s| s.diameter)
        .max()
        .unwrap();
    assert!(
        early <= 4,
        "diameter jumped to {early} with only 10% faults"
    );
    // The network survives at least a third of the links failing.
    let disconnect_at = samples
        .iter()
        .find(|s| s.diameter.is_none())
        .map(|s| s.faults)
        .unwrap_or(total_links);
    assert!(
        disconnect_at > total_links / 3,
        "disconnected after only {disconnect_at} of {total_links} faults"
    );
}

#[test]
fn paper_fault_shapes_leave_the_full_networks_connected() {
    let hx2 = HyperX::regular(2, 16);
    for scenario in [
        FaultScenario::row_2d(),
        FaultScenario::subplane_2d(),
        FaultScenario::cross_2d(),
    ] {
        let mut net = hx2.network().clone();
        scenario.faults(&hx2).apply(&mut net);
        assert!(
            net.is_connected(),
            "{} disconnects the 2D network",
            scenario.name()
        );
    }
    let hx3 = HyperX::regular(3, 8);
    for scenario in [
        FaultScenario::row_3d(),
        FaultScenario::subcube_3d(),
        FaultScenario::star_3d(),
    ] {
        let mut net = hx3.network().clone();
        scenario.faults(&hx3).apply(&mut net);
        assert!(
            net.is_connected(),
            "{} disconnects the 3D network",
            scenario.name()
        );
    }
}

#[test]
fn sweeps_are_deterministic_for_a_fixed_seed() {
    let mut e = Experiment::quick_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform);
    e.sim.warmup_cycles = 200;
    e.sim.measure_cycles = 600;
    e.sim.seed = 123;
    let a = sweep_loads(&e, &[0.3, 0.6]);
    let b = sweep_loads(&e, &[0.3, 0.6]);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.metrics.accepted_load, y.metrics.accepted_load);
        assert_eq!(x.metrics.delivered_packets, y.metrics.delivered_packets);
    }
}

#[test]
fn mechanism_sweep_covers_the_whole_lineup_and_serializes() {
    let mut template = Experiment::quick_2d(MechanismSpec::OmniSP, TrafficSpec::Uniform);
    template.sim.warmup_cycles = 150;
    template.sim.measure_cycles = 400;
    let points = sweep_mechanisms(
        &template,
        &MechanismSpec::fault_free_lineup(),
        TrafficSpec::Uniform,
        &FaultScenario::None,
        &[0.3],
    );
    assert_eq!(points.len(), 6);
    let table = format_rate_table(&points);
    for spec in MechanismSpec::fault_free_lineup() {
        assert!(table.contains(spec.name()), "table misses {spec}");
    }
    let csv = rate_metrics_to_csv(&points);
    assert_eq!(csv.lines().count(), 7);
    // CSV fields are numeric where expected.
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 16);
        assert!(fields[3].parse::<f64>().is_ok());
        assert!(fields[4].parse::<f64>().is_ok());
        // The percentile columns are populated (freshly-run points always
        // carry a histogram) and ramp monotonically up to the max.
        let p50: u64 = fields[7].parse().unwrap();
        let p99: u64 = fields[8].parse().unwrap();
        let p999: u64 = fields[9].parse().unwrap();
        let max: u64 = fields[10].parse().unwrap();
        assert!(p50 <= p99 && p99 <= p999 && p999 <= max, "{line}");
    }
}

#[test]
fn random_fault_scenarios_grow_monotonically() {
    // The same seed with increasing counts reproduces prefixes, so Figure 6's
    // incremental experiment is well defined.
    let hx = HyperX::regular(3, 4);
    let mut previous: Vec<_> = Vec::new();
    for count in [0usize, 10, 20, 30] {
        let faults = FaultScenario::Random { count, seed: 2024 }.faults(&hx);
        assert_eq!(faults.len(), count);
        assert_eq!(&previous[..], &faults.links()[..previous.len()]);
        previous = faults.links().to_vec();
    }
}

#[test]
fn experiments_with_different_escape_roots_still_work() {
    use surepath_core::experiment::RootPlacement;
    let mut e = Experiment::quick_2d(MechanismSpec::PolSP, TrafficSpec::Uniform);
    e.sim.warmup_cycles = 200;
    e.sim.measure_cycles = 500;
    e.root = RootPlacement::Switch(17);
    let view = e.build_view();
    assert_eq!(view.escape_root(), 17);
    let m = e.run_rate(0.4);
    assert!(!m.stalled);
    assert!(m.accepted_load > 0.2);
}

#[test]
fn batch_and_rate_modes_agree_on_low_load_behaviour() {
    // At light batch sizes the completion-time experiment should deliver all
    // packets with latencies comparable to the open-loop experiment.
    let mut e = Experiment::quick_2d(MechanismSpec::OmniSP, TrafficSpec::RandomServerPermutation);
    e.sim.seed = 8;
    let batch = e.run_batch(10, 250);
    assert!(!batch.stalled);
    assert_eq!(batch.delivered_packets, 10 * 64 * 8);
    assert!(batch.average_latency > 30.0);
    let rate = e.run_rate(0.3);
    assert!(!rate.stalled);
    assert!(rate.average_latency > 30.0);
}
