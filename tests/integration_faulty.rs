//! End-to-end simulations under failures (the integration-level counterpart of
//! Figures 6, 8, 9 and 10): SurePath keeps delivering while Ladder-based
//! mechanisms lose packets.

use hyperx_routing::MechanismSpec;
use surepath_core::{Experiment, FaultScenario, TrafficSpec};

fn faulty_3d(
    mechanism: MechanismSpec,
    traffic: TrafficSpec,
    scenario: FaultScenario,
) -> Experiment {
    let mut e = Experiment::quick_3d(mechanism, traffic)
        .with_scenario(scenario)
        .with_num_vcs(if mechanism.is_surepath() { 4 } else { 6 });
    e.sim.warmup_cycles = 400;
    e.sim.measure_cycles = 1200;
    e.sim.seed = 5;
    e
}

fn faulty_2d(
    mechanism: MechanismSpec,
    traffic: TrafficSpec,
    scenario: FaultScenario,
) -> Experiment {
    let mut e = Experiment::quick_2d(mechanism, traffic)
        .with_scenario(scenario)
        .with_num_vcs(4);
    e.sim.warmup_cycles = 400;
    e.sim.measure_cycles = 1200;
    e.sim.seed = 5;
    e
}

#[test]
fn surepath_survives_random_fault_storms() {
    for count in [5usize, 15, 30] {
        for mechanism in MechanismSpec::surepath_lineup() {
            let scenario = FaultScenario::Random { count, seed: 99 };
            let m = faulty_3d(mechanism, TrafficSpec::Uniform, scenario).run_rate(0.5);
            assert!(!m.stalled, "{mechanism} stalled with {count} random faults");
            assert!(
                m.accepted_load > 0.3,
                "{mechanism} accepted only {:.3} with {count} faults",
                m.accepted_load
            );
        }
    }
}

#[test]
fn surepath_degrades_gracefully_with_fault_count() {
    // Figure 6's shape: throughput decreases slowly as faults accumulate; with
    // a third of the sequence applied the loss stays far from a collapse.
    let healthy = faulty_3d(
        MechanismSpec::PolSP,
        TrafficSpec::Uniform,
        FaultScenario::None,
    )
    .run_rate(0.9);
    let faulty = faulty_3d(
        MechanismSpec::PolSP,
        TrafficSpec::Uniform,
        FaultScenario::Random { count: 30, seed: 7 },
    )
    .run_rate(0.9);
    assert!(!healthy.stalled && !faulty.stalled);
    assert!(
        faulty.accepted_load > 0.5 * healthy.accepted_load,
        "throughput collapsed from {:.3} to {:.3}",
        healthy.accepted_load,
        faulty.accepted_load
    );
}

#[test]
fn surepath_delivers_every_packet_under_shape_faults() {
    let scenarios = [
        FaultScenario::Shape(hyperx_topology::FaultShape::Row {
            along_dim: 0,
            at: vec![0, 2, 2],
        }),
        FaultScenario::Shape(hyperx_topology::FaultShape::Subgrid {
            low: vec![1, 1, 1],
            size: 2,
        }),
        FaultScenario::Shape(hyperx_topology::FaultShape::Cross {
            center: vec![2, 2, 2],
            margin: 1,
        }),
    ];
    for scenario in scenarios {
        for mechanism in MechanismSpec::surepath_lineup() {
            let mut e = faulty_3d(mechanism, TrafficSpec::Uniform, scenario.clone());
            e.sim.warmup_cycles = 0;
            e.sim.measure_cycles = 400;
            let mut sim = e.build_simulator();
            sim.run_rate(0.4);
            let generated = sim.total_generated();
            assert!(
                sim.drain(400_000),
                "{mechanism} could not drain under {}",
                scenario.name()
            );
            assert_eq!(sim.total_delivered(), generated);
        }
    }
}

#[test]
fn escape_usage_increases_with_faults() {
    let healthy = faulty_3d(
        MechanismSpec::OmniSP,
        TrafficSpec::Uniform,
        FaultScenario::None,
    )
    .run_rate(0.4);
    let faulty = faulty_3d(
        MechanismSpec::OmniSP,
        TrafficSpec::Uniform,
        FaultScenario::Random { count: 40, seed: 3 },
    )
    .run_rate(0.4);
    assert!(
        faulty.escape_fraction >= healthy.escape_fraction,
        "escape usage should not shrink when faults appear ({:.4} vs {:.4})",
        faulty.escape_fraction,
        healthy.escape_fraction
    );
    assert!(
        faulty.escape_fraction > 0.0,
        "with 40 faults some packets must need the escape subnetwork"
    );
}

#[test]
fn dor_loses_packets_after_a_single_fault_but_omnisp_does_not() {
    // The paper's motivation (§2): a single failure breaks DOR's unique paths,
    // while SurePath reroutes through the escape subnetwork.
    let hx = hyperx_topology::HyperX::regular(2, 4);
    let a = hx.switch_id(&[0, 0]);
    let b = hx.switch_id(&[1, 0]);
    let single_fault = FaultScenario::Shape(hyperx_topology::FaultShape::Row {
        along_dim: 0,
        at: vec![0, 0],
    });
    // Sanity: the row fault includes the (0,0)-(1,0) link.
    assert!(single_fault
        .faults(&hx)
        .links()
        .contains(&hyperx_topology::LinkId::new(a, b)));

    let run = |mechanism: MechanismSpec| {
        let mut e = faulty_2d(mechanism, TrafficSpec::Uniform, single_fault.clone());
        e.sim.warmup_cycles = 0;
        e.sim.measure_cycles = 600;
        e.sim.watchdog_cycles = 3_000;
        let mut sim = e.build_simulator();
        sim.run_rate(0.3);
        let generated = sim.total_generated();
        let drained = sim.drain(30_000);
        (generated, sim.total_delivered(), drained)
    };

    let (gen_sp, del_sp, drained_sp) = run(MechanismSpec::OmniSP);
    assert!(
        drained_sp,
        "OmniSP must deliver everything despite the faulty row"
    );
    assert_eq!(gen_sp, del_sp);

    let (gen_dor, del_dor, drained_dor) = run(MechanismSpec::Dor);
    assert!(
        !drained_dor || del_dor < gen_dor,
        "DOR should be unable to deliver the traffic that needed the dead row links"
    );
}

#[test]
fn star_configuration_is_the_most_stressful() {
    // Figure 9: Row and Subcube barely hurt, the Star (which almost isolates
    // the escape root) hurts most.
    let row = faulty_3d(
        MechanismSpec::PolSP,
        TrafficSpec::Uniform,
        FaultScenario::Shape(hyperx_topology::FaultShape::Row {
            along_dim: 0,
            at: vec![0, 2, 2],
        }),
    )
    .run_rate(0.9);
    let star = faulty_3d(
        MechanismSpec::PolSP,
        TrafficSpec::Uniform,
        FaultScenario::Shape(hyperx_topology::FaultShape::Cross {
            center: vec![2, 2, 2],
            margin: 1,
        }),
    )
    .run_rate(0.9);
    assert!(!row.stalled && !star.stalled);
    assert!(
        star.accepted_load <= row.accepted_load + 0.05,
        "the Star fault ({:.3}) should not outperform the Row fault ({:.3})",
        star.accepted_load,
        row.accepted_load
    );
}

#[test]
fn batch_completion_works_under_star_faults() {
    // Figure 10 in miniature: the closed-loop experiment completes under the
    // Star fault for both SurePath variants and reports a throughput curve.
    for mechanism in MechanismSpec::surepath_lineup() {
        let e = faulty_3d(
            mechanism,
            TrafficSpec::RegularPermutationToNeighbour,
            FaultScenario::Shape(hyperx_topology::FaultShape::Cross {
                center: vec![2, 2, 2],
                margin: 1,
            }),
        );
        let result = e.run_batch(20, 500);
        assert!(!result.stalled, "{mechanism} stalled in batch mode");
        assert_eq!(
            result.delivered_packets,
            20 * 64 * 4,
            "{mechanism} lost packets"
        );
        assert!(result.completion_time > 0);
        assert!(!result.samples.is_empty());
    }
}
