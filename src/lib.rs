//! # surepath
//!
//! Umbrella crate of the SurePath (SC'24) reproduction. It re-exports the
//! whole stack — topology, routing, simulator, experiment API, campaign
//! runner and CLI internals — so the repo-level integration tests and the
//! worked examples need a single dependency.
//!
//! The layers, bottom up:
//!
//! * [`topology`] (`hyperx-topology`) — graphs, HyperX coordinates, faults.
//! * [`routing`] (`hyperx-routing`) — routing algorithms and mechanisms.
//! * [`sim`] (`hyperx-sim`) — the cycle-level simulator.
//! * [`runner`] (`surepath-runner`) — declarative campaign specs, the
//!   work-stealing executor and the resumable JSONL result store.
//! * [`dist`] (`surepath-dist`) — the distributed campaign driver:
//!   coordinator/worker fan-out over TCP with shard manifests.
//! * [`core`] (`surepath-core`) — experiments, scenarios, sweeps and the
//!   campaign → experiment bridge.
//! * [`cli`] (`surepath-cli`) — the `surepath` command line.

pub use hyperx_routing as routing;
pub use hyperx_sim as sim;
pub use hyperx_topology as topology;
pub use surepath_cli as cli;
pub use surepath_core as core;
pub use surepath_dist as dist;
pub use surepath_runner as runner;
